#pragma once

// Deterministic fault injection — the schedule half.
//
// A `FaultSchedule` compiles a `FaultPlan` against a concrete graph and
// seed. Its determinism contract mirrors the trial-runner's (see
// docs/PROTOCOLS.md, "Deterministic parallel trials"):
//
//  * At construction, one private key per fault kind is derived from
//    `Rng(seed)` via `Rng::split` with fixed tags, in a fixed order.
//  * Memoryless decisions (jam, drop) are pure hashes of
//    (kind key, entity, slot) — query order cannot affect them.
//  * Stateful decisions (crash/recover, link down/up) are epoch-level
//    Markov chains whose per-epoch transition draws are pure hashes of
//    (kind key, entity, epoch index); `begin_slot(t)` applies every epoch
//    boundary up to `t` exactly once, in epoch order, regardless of how
//    the caller's slots are batched.
//
// A schedule is therefore a pure function of `(seed, plan, graph)`:
// byte-identical under any `--jobs`, and two schedules built from the same
// triple answer every query identically.
//
// The engine consumes it through `RadioNetwork::set_faults` (non-owning,
// like `set_trace`); `enabled() == false` (default-constructed, or an
// all-zero plan) makes the hook free.

#include <cstdint>
#include <vector>

#include "faults/fault_plan.h"
#include "graph/graph.h"

namespace radiomc {

class FaultSchedule {
 public:
  /// Transition totals, maintained as epochs are applied. Used by
  /// telemetry ("faults.events" counters per kind) and tests.
  struct Stats {
    std::uint64_t crashes = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t link_downs = 0;
    std::uint64_t link_ups = 0;
  };

  /// Disabled schedule: every query reports "no fault".
  FaultSchedule() = default;

  /// Compiles `plan` (validated here) against `g`. The graph must outlive
  /// the schedule. An all-zero plan yields a disabled schedule.
  FaultSchedule(const Graph& g, const FaultPlan& plan, std::uint64_t seed);

  bool enabled() const noexcept { return enabled_; }
  const FaultPlan& plan() const noexcept { return plan_; }
  const Stats& stats() const noexcept { return stats_; }

  /// Applies every crash/link epoch boundary up to and including slot `t`.
  /// The engine calls this once per slot with monotone `t`; jumps forward
  /// are fine (all skipped boundaries are applied in order).
  void begin_slot(std::uint64_t t);

  bool node_alive(NodeId v) const noexcept {
    return alive_.empty() || alive_[v] != 0;
  }

  /// Number of currently-crashed nodes (0 when crash faults are off).
  /// Maintained incrementally at epoch boundaries so the engine can charge
  /// fault_crashed_slots per slot without scanning all n stations.
  NodeId num_crashed() const noexcept { return crashed_; }

  /// Is the edge to the `k`-th neighbor of `u` (index into
  /// `graph.neighbors(u)`) up? Undirected: a down edge blocks both
  /// directions.
  bool link_up(NodeId u, std::size_t k) const noexcept {
    return link_state_.empty() || link_state_[edge_id_[offset_[u] + k]] != 0;
  }

  /// Background noise at (receiver `v`, channel, slot `t`) that kills an
  /// otherwise-clean reception. Pure per-slot draw.
  bool jammed(std::uint64_t t, NodeId v, std::uint32_t channel) const noexcept;

  /// Loss of an otherwise-successful delivery. Pure per-slot draw.
  bool dropped(std::uint64_t t, NodeId v, std::uint32_t channel) const noexcept;

 private:
  void apply_epoch(std::uint64_t e);
  bool onset_active(std::uint64_t slot) const noexcept {
    return slot >= plan_.window_start && slot < plan_.window_end;
  }

  bool enabled_ = false;
  FaultPlan plan_;
  Stats stats_;

  std::uint64_t crash_key_ = 0, recover_key_ = 0;
  std::uint64_t link_down_key_ = 0, link_up_key_ = 0;
  std::uint64_t jam_key_ = 0, drop_key_ = 0;

  std::vector<std::uint8_t> alive_;       // per node; empty = all alive
  NodeId crashed_ = 0;                    // count of zeros in alive_
  std::vector<std::uint8_t> link_state_;  // per undirected edge; empty = up
  std::vector<std::size_t> offset_;       // CSR offsets mirroring the graph
  std::vector<std::uint32_t> edge_id_;    // adjacency-aligned edge ids
  std::uint64_t next_epoch_ = 0;
};

}  // namespace radiomc
