#include "analysis/trace_event.h"

namespace radiomc::analysis {

std::string_view msg_kind_name(MsgKind k) noexcept {
  switch (k) {
    case MsgKind::kData: return "data";
    case MsgKind::kAck: return "ack";
    case MsgKind::kLeader: return "leader";
    case MsgKind::kBfsAnnounce: return "bfs_announce";
    case MsgKind::kDfsToken: return "dfs_token";
    case MsgKind::kBcastData: return "bcast_data";
    case MsgKind::kNack: return "nack";
    case MsgKind::kSetupReport: return "setup_report";
  }
  return "unknown";
}

std::optional<MsgKind> msg_kind_from_name(std::string_view name) noexcept {
  if (name == "data") return MsgKind::kData;
  if (name == "ack") return MsgKind::kAck;
  if (name == "leader") return MsgKind::kLeader;
  if (name == "bfs_announce") return MsgKind::kBfsAnnounce;
  if (name == "dfs_token") return MsgKind::kDfsToken;
  if (name == "bcast_data") return MsgKind::kBcastData;
  if (name == "nack") return MsgKind::kNack;
  if (name == "setup_report") return MsgKind::kSetupReport;
  return std::nullopt;
}

bool is_upbound_kind(MsgKind k) noexcept {
  switch (k) {
    case MsgKind::kData:
    case MsgKind::kNack:
    case MsgKind::kSetupReport:
      return true;
    case MsgKind::kAck:
    case MsgKind::kLeader:
    case MsgKind::kBfsAnnounce:
    case MsgKind::kDfsToken:
    case MsgKind::kBcastData:
      return false;
  }
  return false;
}

bool is_trace_line_kind(std::string_view ev) noexcept {
  for (std::string_view k : kTraceLineKinds)
    if (k == ev) return true;
  return false;
}

}  // namespace radiomc::analysis
