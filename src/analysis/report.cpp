#include "analysis/report.h"

#include <cstdio>
#include <fstream>

#include "telemetry/json_writer.h"

namespace radiomc::analysis {

namespace {

using telemetry::JsonWriter;

const char* status_name(CheckStatus s) {
  switch (s) {
    case CheckStatus::kPass: return "pass";
    case CheckStatus::kFail: return "FAIL";
    case CheckStatus::kSkip: return "skip";
  }
  return "?";
}

void json_check(JsonWriter& w, const CheckResult& c) {
  w.begin_object();
  w.member("id", c.id);
  w.member("status", status_name(c.status));
  w.member("detail", c.detail);
  if (c.trials > 0) {
    w.member("observed", c.observed);
    w.member("bound", c.bound);
    w.member("successes", c.successes);
    w.member("trials", c.trials);
    w.member("wilson_low", c.wilson_low);
    w.member("wilson_high", c.wilson_high);
  }
  w.end_object();
}

void json_flight(JsonWriter& w, const FlightRecord& f) {
  w.begin_object();
  w.member("origin", static_cast<std::uint64_t>(f.origin));
  w.member("seq", static_cast<std::uint64_t>(f.seq));
  w.member("transmissions", f.transmissions);
  w.member("hops", static_cast<std::uint64_t>(f.hops.size()));
  w.member("retransmissions", f.retransmissions());
  w.member("overheard", f.overheard);
  w.member("reached_root", f.reached_root);
  w.member("first_slot", f.first_slot);
  if (f.reached_root) w.member("completed_slot", f.completed_slot);
  w.end_object();
}

}  // namespace

std::string report_json(const Trace& trace,
                        const std::vector<FlightRecord>& flights,
                        const AuditReport& audit,
                        const AnomalyReport& anomalies) {
  std::string out;
  JsonWriter w(&out);
  w.begin_object();
  w.member("schema", kReportSchemaVersion);
  w.member("trace_schema", trace.schema.version);
  if (!trace.schema.protocol.empty())
    w.member("protocol", trace.schema.protocol);

  w.key("trace");
  w.begin_object();
  w.member("events", static_cast<std::uint64_t>(trace.events.size()));
  w.member("last_slot", trace.last_slot);
  w.member("tx", trace.tx_count);
  w.member("rx", trace.rx_count);
  w.member("collisions", trace.collision_count);
  w.member("jams", trace.jam_count);
  w.member("truncated", trace.truncated);
  if (trace.truncated) w.member("dropped_events", trace.dropped_events);
  w.end_object();

  w.key("audit");
  w.begin_object();
  w.member("pass", audit.pass);
  w.member("flights", audit.flights_total);
  w.member("reached_root", audit.flights_reached_root);
  w.key("checks");
  w.begin_array();
  for (const CheckResult& c : audit.checks) json_check(w, c);
  w.end_array();
  w.end_object();

  w.key("anomalies");
  w.begin_object();
  w.member("clean", anomalies.clean());
  w.member("stall_threshold", anomalies.stall_threshold);
  w.key("stalls");
  w.begin_array();
  for (const StallWindow& s : anomalies.stalls) {
    w.begin_object();
    w.member("from", s.from);
    w.member("to", s.to);
    w.member("gap", s.gap());
    w.end_object();
  }
  w.end_array();
  w.key("levels");
  w.begin_array();
  for (const LevelStats& l : anomalies.levels) {
    w.begin_object();
    w.member("level", static_cast<std::uint64_t>(l.level));
    w.member("collisions", l.collisions);
    w.member("jams", l.jams);
    w.member("deliveries", l.deliveries);
    w.member("hot", l.hot);
    w.end_object();
  }
  w.end_array();
  w.key("starved");
  w.begin_array();
  for (const StarvedLevel& s : anomalies.starved) {
    w.begin_object();
    w.member("level", static_cast<std::uint64_t>(s.level));
    w.member("phases", s.phases);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("flights");
  w.begin_array();
  for (const FlightRecord& f : flights) json_flight(w, f);
  w.end_array();

  w.end_object();
  return out;
}

bool write_report_file(const std::string& path, const Trace& trace,
                       const std::vector<FlightRecord>& flights,
                       const AuditReport& audit,
                       const AnomalyReport& anomalies) {
  std::ofstream out(path);
  if (!out) return false;
  out << report_json(trace, flights, audit, anomalies) << '\n';
  return out.good();
}

// --- Human-readable printers -------------------------------------------

void print_audit(std::ostream& out, const AuditReport& audit) {
  out << "audit: " << (audit.pass ? "PASS" : "FAIL") << "  ("
      << audit.flights_reached_root << "/" << audit.flights_total
      << " flights reached the root)\n";
  for (const CheckResult& c : audit.checks) {
    char line[256];
    std::snprintf(line, sizeof(line), "  %-16s %-4s  %s", c.id.c_str(),
                  status_name(c.status), c.detail.c_str());
    out << line << '\n';
  }
}

void print_flight_table(std::ostream& out,
                        const std::vector<FlightRecord>& flights) {
  out << "  origin  seq  hops  tx  retx  root  first..done\n";
  for (const FlightRecord& f : flights) {
    char line[160];
    if (f.reached_root) {
      std::snprintf(line, sizeof(line),
                    "  %6u %4u %5zu %3llu %5llu   yes  %llu..%llu",
                    f.origin, f.seq, f.hops.size(),
                    static_cast<unsigned long long>(f.transmissions),
                    static_cast<unsigned long long>(f.retransmissions()),
                    static_cast<unsigned long long>(f.first_slot),
                    static_cast<unsigned long long>(f.completed_slot));
    } else {
      std::snprintf(line, sizeof(line),
                    "  %6u %4u %5zu %3llu %5llu    no  %llu..-",
                    f.origin, f.seq, f.hops.size(),
                    static_cast<unsigned long long>(f.transmissions),
                    static_cast<unsigned long long>(f.retransmissions()),
                    static_cast<unsigned long long>(f.first_slot));
    }
    out << line << '\n';
  }
}

void print_flight_detail(std::ostream& out, const FlightRecord& flight) {
  out << "flight (origin=" << flight.origin << ", seq=" << flight.seq
      << "): " << flight.hops.size() << " hops, " << flight.transmissions
      << " transmissions (" << flight.retransmissions() << " beyond minimum), "
      << flight.overheard << " overheard copies"
      << (flight.reached_root ? ", reached the root" : ", did NOT reach root")
      << "\n";
  for (std::size_t i = 0; i < flight.hops.size(); ++i) {
    const Hop& h = flight.hops[i];
    out << "  hop " << i << ": slot " << h.rx_slot << "  " << h.from;
    if (h.from_level != TraceSchema::kNoLevel) out << " (L" << h.from_level
                                                  << ")";
    out << " -> " << h.to;
    if (h.to_level != TraceSchema::kNoLevel) out << " (L" << h.to_level << ")";
    if (h.acked) {
      out << "  ack@" << h.ack_slot << " (+" << h.ack_latency() << ")";
    } else if (h.ack_pending_at_end) {
      out << "  ack pending at end of trace";
    } else {
      out << "  UNACKED";
    }
    out << '\n';
  }
}

void print_report(std::ostream& out, const Trace& trace,
                  const std::vector<FlightRecord>& flights,
                  const AuditReport& audit, const AnomalyReport& anomalies) {
  out << "trace: " << trace.schema.version;
  if (!trace.schema.protocol.empty())
    out << "  protocol=" << trace.schema.protocol;
  out << "\n  events=" << trace.events.size() << " (tx=" << trace.tx_count
      << " rx=" << trace.rx_count << " coll=" << trace.collision_count
      << " jam=" << trace.jam_count << ")  last_slot=" << trace.last_slot;
  if (trace.truncated)
    out << "\n  TRUNCATED at slot " << trace.truncated_at << " ("
        << trace.dropped_events << " events dropped)";
  out << "\n\n";

  print_audit(out, audit);
  out << '\n';

  out << "anomalies: " << (anomalies.clean() ? "none" : "flagged")
      << "  (stall threshold " << anomalies.stall_threshold << " slots)\n";
  for (const StallWindow& s : anomalies.stalls)
    out << "  stall: no clean delivery in slots " << s.from << ".." << s.to
        << " (" << s.gap() << " slots)\n";
  for (const LevelStats& l : anomalies.levels) {
    if (l.hot)
      out << "  hot level " << l.level << ": " << l.collisions
          << " genuine collisions (" << l.jams << " jams, " << l.deliveries
          << " deliveries)\n";
  }
  for (const StarvedLevel& s : anomalies.starved)
    out << "  starved level " << s.level << ": occupied "
        << s.phases << " consecutive phases without an advance\n";
  out << '\n';

  out << "flights: " << flights.size() << "\n";
  print_flight_table(out, flights);
}

}  // namespace radiomc::analysis
