#pragma once

// Parser for `radiomc.trace/v2` JSONL streams (the format written by
// telemetry::JsonlTraceSink) into the typed Trace of trace_event.h.
//
// The reader is strict about what matters and lenient about the rest:
//  * the first line MUST be a schema record with the exact version string
//    — a stream written by a different schema generation is rejected, not
//    guessed at;
//  * unknown keys on known records are ignored (the writer may grow
//    fields), but unknown "ev" values and malformed JSON are errors with a
//    line number, because a partially-understood trace would silently
//    corrupt every downstream statistic.
//
// The JSON subset accepted is exactly what the sink emits: one flat object
// per line with string / unsigned-integer / boolean scalars and one
// integer array ("levels"). There is no general JSON parser in the repo
// and this reader deliberately does not become one.

#include <istream>
#include <string>

#include "analysis/trace_event.h"

namespace radiomc::analysis {

struct TraceReadResult {
  bool ok = false;
  std::string error;      ///< non-empty iff !ok
  std::uint64_t line_no = 0;  ///< 1-based line of the error (0 = file-level)
  Trace trace;            ///< valid iff ok
};

/// Parses a whole stream. Blank lines are permitted and skipped.
TraceReadResult read_trace(std::istream& in);

/// Opens `path` and parses it; a missing/unreadable file is a file-level
/// error, not an exception.
TraceReadResult read_trace_file(const std::string& path);

}  // namespace radiomc::analysis
