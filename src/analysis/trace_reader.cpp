#include "analysis/trace_reader.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/jsonl_sink.h"

namespace radiomc::analysis {

namespace {

// --- Minimal flat-JSON line scanner -----------------------------------
//
// Accepts exactly the shape the sink writes: {"k":v,...} with v a string,
// an unsigned integer, a boolean, or an array of unsigned integers. The
// scanner produces (key, value) pairs; values keep their lexical form plus
// a tag so the consumer can check types.

enum class ValType { kString, kUInt, kBool, kUIntArray };

struct Field {
  std::string key;
  ValType type = ValType::kUInt;
  std::string str;                  // kString
  std::uint64_t num = 0;            // kUInt
  bool b = false;                   // kBool
  std::vector<std::uint64_t> arr;   // kUIntArray
};

struct LineScan {
  bool ok = false;
  std::string error;
  std::vector<Field> fields;
};

void skip_ws(std::string_view s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
}

bool scan_string(std::string_view s, std::size_t& i, std::string* out) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  out->clear();
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\') {
      // The sink never emits content needing escapes beyond these, but a
      // hand-edited fixture might.
      if (i + 1 >= s.size()) return false;
      char c = s[i + 1];
      if (c == '"' || c == '\\' || c == '/') out->push_back(c);
      else if (c == 'n') out->push_back('\n');
      else if (c == 't') out->push_back('\t');
      else return false;
      i += 2;
    } else {
      out->push_back(s[i++]);
    }
  }
  if (i >= s.size()) return false;  // unterminated
  ++i;                              // closing quote
  return true;
}

bool scan_uint(std::string_view s, std::size_t& i, std::uint64_t* out) {
  if (i >= s.size() || s[i] < '0' || s[i] > '9') return false;
  std::uint64_t v = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(s[i] - '0');
    ++i;
  }
  *out = v;
  return true;
}

LineScan scan_line(std::string_view s) {
  LineScan r;
  std::size_t i = 0;
  skip_ws(s, i);
  if (i >= s.size() || s[i] != '{') {
    r.error = "expected '{'";
    return r;
  }
  ++i;
  skip_ws(s, i);
  if (i < s.size() && s[i] == '}') {
    ++i;
    r.ok = true;
    return r;
  }
  for (;;) {
    skip_ws(s, i);
    Field f;
    if (!scan_string(s, i, &f.key)) {
      r.error = "expected key string";
      return r;
    }
    skip_ws(s, i);
    if (i >= s.size() || s[i] != ':') {
      r.error = "expected ':' after key \"" + f.key + "\"";
      return r;
    }
    ++i;
    skip_ws(s, i);
    if (i >= s.size()) {
      r.error = "missing value for key \"" + f.key + "\"";
      return r;
    }
    if (s[i] == '"') {
      f.type = ValType::kString;
      if (!scan_string(s, i, &f.str)) {
        r.error = "bad string value for key \"" + f.key + "\"";
        return r;
      }
    } else if (s[i] == 't' || s[i] == 'f') {
      f.type = ValType::kBool;
      if (s.substr(i, 4) == "true") {
        f.b = true;
        i += 4;
      } else if (s.substr(i, 5) == "false") {
        f.b = false;
        i += 5;
      } else {
        r.error = "bad literal for key \"" + f.key + "\"";
        return r;
      }
    } else if (s[i] == '[') {
      f.type = ValType::kUIntArray;
      ++i;
      skip_ws(s, i);
      if (i < s.size() && s[i] == ']') {
        ++i;
      } else {
        for (;;) {
          skip_ws(s, i);
          std::uint64_t v = 0;
          if (!scan_uint(s, i, &v)) {
            r.error = "bad array element for key \"" + f.key + "\"";
            return r;
          }
          f.arr.push_back(v);
          skip_ws(s, i);
          if (i < s.size() && s[i] == ',') {
            ++i;
            continue;
          }
          if (i < s.size() && s[i] == ']') {
            ++i;
            break;
          }
          r.error = "expected ',' or ']' in array for key \"" + f.key + "\"";
          return r;
        }
      }
    } else {
      f.type = ValType::kUInt;
      if (!scan_uint(s, i, &f.num)) {
        r.error = "bad value for key \"" + f.key + "\"";
        return r;
      }
    }
    r.fields.push_back(std::move(f));
    skip_ws(s, i);
    if (i < s.size() && s[i] == ',') {
      ++i;
      continue;
    }
    if (i < s.size() && s[i] == '}') {
      ++i;
      break;
    }
    r.error = "expected ',' or '}'";
    return r;
  }
  skip_ws(s, i);
  if (i != s.size()) {
    r.error = "trailing characters after object";
    return r;
  }
  r.ok = true;
  return r;
}

const Field* find(const LineScan& ls, std::string_view key) {
  for (const Field& f : ls.fields)
    if (f.key == key) return &f;
  return nullptr;
}

bool get_uint(const LineScan& ls, std::string_view key, std::uint64_t* out) {
  const Field* f = find(ls, key);
  if (f == nullptr || f->type != ValType::kUInt) return false;
  *out = f->num;
  return true;
}

// --- Per-record parsing ------------------------------------------------

struct ParseCtx {
  Trace* trace;
  std::string error;  // non-empty => fail the line
};

void parse_schema(const LineScan& ls, ParseCtx* ctx) {
  TraceSchema& sc = ctx->trace->schema;
  const Field* v = find(ls, "v");
  if (v == nullptr || v->type != ValType::kString) {
    ctx->error = "schema record missing version string \"v\"";
    return;
  }
  sc.version = v->str;
  if (sc.version != telemetry::kTraceSchemaVersion) {
    ctx->error = "unsupported trace schema version \"" + sc.version +
                 "\" (this reader understands \"" +
                 telemetry::kTraceSchemaVersion + "\")";
    return;
  }
  if (const Field* p = find(ls, "protocol");
      p != nullptr && p->type == ValType::kString) {
    sc.protocol = p->str;
  }
  std::uint64_t decay_len = 0;
  if (get_uint(ls, "decay_len", &decay_len)) {
    SlotStructure slots;
    slots.decay_len = static_cast<std::uint32_t>(decay_len);
    if (const Field* a = find(ls, "ack");
        a != nullptr && a->type == ValType::kBool)
      slots.ack_subslots = a->b;
    if (const Field* m = find(ls, "mod3");
        m != nullptr && m->type == ValType::kBool)
      slots.mod3_gating = m->b;
    sc.slots = slots;
  }
  get_uint(ls, "agg", &sc.aggregate_every);
  if (const Field* lv = find(ls, "levels");
      lv != nullptr && lv->type == ValType::kUIntArray) {
    sc.levels.reserve(lv->arr.size());
    for (std::uint64_t l : lv->arr)
      sc.levels.push_back(static_cast<std::uint32_t>(l));
  }
}

void parse_event(const LineScan& ls, EvKind kind, ParseCtx* ctx) {
  TraceEvent e;
  e.ev = kind;
  std::uint64_t v = 0;
  if (!get_uint(ls, "t", &e.t)) {
    ctx->error = "event record missing slot \"t\"";
    return;
  }
  if (!get_uint(ls, "node", &v)) {
    ctx->error = "event record missing \"node\"";
    return;
  }
  e.node = static_cast<NodeId>(v);
  if (get_uint(ls, "ch", &v)) e.ch = static_cast<ChannelId>(v);

  if (kind == EvKind::kCollision) {
    if (!get_uint(ls, "txn", &v)) {
      ctx->error = "coll record missing \"txn\"";
      return;
    }
    e.tx_neighbors = static_cast<std::uint32_t>(v);
  } else {
    const Field* k = find(ls, "kind");
    if (k == nullptr || k->type != ValType::kString) {
      ctx->error = "tx/rx record missing message \"kind\"";
      return;
    }
    std::optional<MsgKind> mk = msg_kind_from_name(k->str);
    if (!mk) {
      ctx->error = "unknown message kind \"" + k->str + "\"";
      return;
    }
    e.kind = *mk;
    if (get_uint(ls, "origin", &v)) e.origin = static_cast<NodeId>(v);
    if (get_uint(ls, "seq", &v)) e.seq = static_cast<std::uint32_t>(v);
    if (get_uint(ls, "dest", &v)) e.dest = static_cast<NodeId>(v);
    if (get_uint(ls, "from", &v)) e.from = static_cast<NodeId>(v);
    if (get_uint(ls, "fp", &v)) e.from_parent = static_cast<NodeId>(v);
  }

  Trace& tr = *ctx->trace;
  tr.last_slot = std::max(tr.last_slot, e.t);
  switch (kind) {
    case EvKind::kTx: ++tr.tx_count; break;
    case EvKind::kRx: ++tr.rx_count; break;
    case EvKind::kCollision:
      if (e.tx_neighbors >= 2) ++tr.collision_count;
      else ++tr.jam_count;
      break;
  }
  tr.events.push_back(e);
}

void parse_agg(const LineScan& ls, ParseCtx* ctx) {
  TraceWindow w;
  if (!get_uint(ls, "t0", &w.t0) || !get_uint(ls, "t1", &w.t1)) {
    ctx->error = "agg record missing window bounds";
    return;
  }
  get_uint(ls, "tx", &w.tx);
  get_uint(ls, "rx", &w.rx);
  get_uint(ls, "coll", &w.coll);
  get_uint(ls, "jam", &w.jam);
  ctx->trace->windows.push_back(w);
}

void parse_truncated(const LineScan& ls, ParseCtx* ctx) {
  Trace& tr = *ctx->trace;
  tr.truncated = true;
  get_uint(ls, "t", &tr.truncated_at);
  get_uint(ls, "dropped", &tr.dropped_events);
}

}  // namespace

TraceReadResult read_trace(std::istream& in) {
  TraceReadResult res;
  std::string line;
  std::uint64_t line_no = 0;
  bool saw_schema = false;
  while (std::getline(in, line)) {
    ++line_no;
    // Tolerate \r\n fixtures.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) continue;

    LineScan ls = scan_line(line);
    if (!ls.ok) {
      res.error = "malformed JSONL: " + ls.error;
      res.line_no = line_no;
      return res;
    }
    const Field* ev = find(ls, "ev");
    if (ev == nullptr || ev->type != ValType::kString) {
      res.error = "record missing \"ev\" discriminator";
      res.line_no = line_no;
      return res;
    }

    if (!saw_schema) {
      if (ev->str != "schema") {
        res.error = "first record must be the schema header (got \"" +
                    ev->str + "\")";
        res.line_no = line_no;
        return res;
      }
    } else if (ev->str == "schema") {
      res.error = "duplicate schema record";
      res.line_no = line_no;
      return res;
    }

    ParseCtx ctx{&res.trace, {}};
    if (ev->str == "schema") {
      parse_schema(ls, &ctx);
      if (ctx.error.empty()) saw_schema = true;
    } else if (ev->str == "tx") {
      parse_event(ls, EvKind::kTx, &ctx);
    } else if (ev->str == "rx") {
      parse_event(ls, EvKind::kRx, &ctx);
    } else if (ev->str == "coll") {
      parse_event(ls, EvKind::kCollision, &ctx);
    } else if (ev->str == "agg") {
      parse_agg(ls, &ctx);
    } else if (ev->str == "truncated") {
      parse_truncated(ls, &ctx);
    } else {
      ctx.error = "unknown record type \"" + ev->str + "\"";
    }
    if (!ctx.error.empty()) {
      res.error = ctx.error;
      res.line_no = line_no;
      return res;
    }
  }
  if (!saw_schema) {
    res.error = "empty stream: no schema header";
    return res;
  }
  res.ok = true;
  return res;
}

TraceReadResult read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    TraceReadResult res;
    res.error = "cannot open trace file: " + path;
    return res;
  }
  return read_trace(in);
}

}  // namespace radiomc::analysis
