#include "analysis/lifecycle.h"

#include <map>
#include <utility>

namespace radiomc::analysis {

std::vector<FlightRecord> build_lifecycles(const Trace& trace) {
  // (origin, seq) -> index into `flights`; std::map keeps the output
  // ordered by identity, which the CLI and tests rely on.
  std::map<std::pair<NodeId, std::uint32_t>, std::size_t> index;
  std::vector<FlightRecord> flights;

  auto flight_of = [&](NodeId origin, std::uint32_t seq) -> FlightRecord& {
    auto [it, inserted] =
        index.try_emplace({origin, seq}, flights.size());
    if (inserted) {
      FlightRecord f;
      f.origin = origin;
      f.seq = seq;
      flights.push_back(f);
    }
    return flights[it->second];
  };

  const TraceSchema& sc = trace.schema;
  const NodeId root = sc.root();

  for (const TraceEvent& e : trace.events) {
    if (e.ev == EvKind::kCollision) continue;

    if (is_upbound_kind(e.kind)) {
      FlightRecord& f = flight_of(e.origin, e.seq);
      if (f.transmissions == 0 && f.hops.empty()) f.first_slot = e.t;
      if (e.ev == EvKind::kTx) {
        ++f.transmissions;
        continue;
      }
      // Clean delivery: an accepted hop iff the transmitter named the
      // receiver as its BFS parent (§4's accept rule).
      if (e.from_parent == e.node && e.from != kNoNode) {
        Hop h;
        h.rx_slot = e.t;
        h.from = e.from;
        h.to = e.node;
        h.from_level = sc.level_of(e.from);
        h.to_level = sc.level_of(e.node);
        f.hops.push_back(h);
        if (root != kNoNode && e.node == root) {
          f.reached_root = true;
          f.completed_slot = e.t;
        }
      } else {
        ++f.overheard;
      }
      continue;
    }

    if (e.kind == MsgKind::kAck && e.ev == EvKind::kRx) {
      // An acknowledgement counts only when it reaches the child it names
      // (§3: the parent acks, the child listens in the ack subslot).
      if (e.dest != e.node) continue;
      auto it = index.find({e.origin, e.seq});
      if (it == index.end()) continue;
      FlightRecord& f = flights[it->second];
      for (Hop& h : f.hops) {
        if (!h.acked && h.from == e.node && h.rx_slot <= e.t) {
          h.acked = true;
          h.ack_slot = e.t;
          break;
        }
      }
    }
  }

  // Hops whose ack subslot lies beyond the end of the trace could not
  // have been acked even in a perfect run — run_collection halts the
  // moment the root holds everything, mid-phase, so the final hop's ack
  // is routinely unobservable.
  for (FlightRecord& f : flights) {
    for (Hop& h : f.hops) {
      if (!h.acked && h.rx_slot + 1 > trace.last_slot)
        h.ack_pending_at_end = true;
    }
  }
  return flights;
}

const FlightRecord* find_flight(const std::vector<FlightRecord>& flights,
                                NodeId origin, std::uint32_t seq) noexcept {
  for (const FlightRecord& f : flights)
    if (f.origin == origin && f.seq == seq) return &f;
  return nullptr;
}

}  // namespace radiomc::analysis
