#pragma once

// Typed in-memory form of a `radiomc.trace/v2` JSONL stream (the format
// written by telemetry::JsonlTraceSink). The analysis subsystem — the
// message-lifecycle builder, the theory-conformance auditor and the
// anomaly scanner — all consume this representation; only the reader
// (trace_reader.h) knows about JSON.
//
// A trace is the flight recorder of one run: every physical transmit /
// deliver / collision the engine observed, in slot order, plus the run
// context (protocol, slot algebra, BFS levels) the writer recorded in the
// schema header. Analysis never touches live protocol state, so a trace
// audited today and one audited in a year are judged by the same code —
// the offline half of the "no protocol may base decisions on the trace"
// contract in radio/trace.h.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "radio/message.h"
#include "radio/schedule.h"

namespace radiomc::analysis {

enum class EvKind : std::uint8_t {
  kTx,         ///< a station transmitted
  kRx,         ///< a clean (single-transmitter) delivery
  kCollision,  ///< the receiver heard noise (txn >= 2) or a jam (txn == 1)
};

struct TraceEvent {
  EvKind ev = EvKind::kTx;
  SlotTime t = 0;
  NodeId node = kNoNode;  ///< transmitter (tx) or receiver (rx/coll)
  ChannelId ch = 0;

  // tx/rx only.
  MsgKind kind = MsgKind::kData;
  NodeId origin = kNoNode;
  std::uint32_t seq = 0;
  NodeId dest = kNoNode;         ///< absent in the stream -> kNoNode
  NodeId from = kNoNode;         ///< rx: immediate transmitter
  NodeId from_parent = kNoNode;  ///< rx: transmitter's BFS parent

  // coll only: >= 2 genuine collision, == 1 jam-killed clean reception.
  std::uint32_t tx_neighbors = 0;

  bool is_collision_genuine() const noexcept {
    return ev == EvKind::kCollision && tx_neighbors >= 2;
  }
  bool is_jam() const noexcept {
    return ev == EvKind::kCollision && tx_neighbors <= 1;
  }
};

/// One "agg" window line.
struct TraceWindow {
  SlotTime t0 = 0, t1 = 0;
  std::uint64_t tx = 0, rx = 0, coll = 0, jam = 0;
};

/// The schema header: run context recorded by the writer.
struct TraceSchema {
  std::string version;   ///< e.g. "radiomc.trace/v2"
  std::string protocol;  ///< "" when the writer did not tag it
  /// Slot algebra of the traced protocol; absent for schedules without a
  /// PhaseClock (e.g. setup traces). Phase-based checks need it.
  std::optional<SlotStructure> slots;
  std::uint64_t aggregate_every = 0;
  /// BFS level per node id; empty when the writer had no tree.
  std::vector<std::uint32_t> levels;

  bool has_levels() const noexcept { return !levels.empty(); }
  /// Level of `v`, or kNoLevel when unknown / out of range.
  static constexpr std::uint32_t kNoLevel = static_cast<std::uint32_t>(-1);
  std::uint32_t level_of(NodeId v) const noexcept {
    return v < levels.size() ? levels[v] : kNoLevel;
  }
  /// The unique level-0 node, or kNoNode when levels are absent.
  NodeId root() const noexcept {
    for (NodeId v = 0; v < levels.size(); ++v)
      if (levels[v] == 0) return v;
    return kNoNode;
  }
};

struct Trace {
  TraceSchema schema;
  std::vector<TraceEvent> events;     ///< tx/rx/coll, stream (= slot) order
  std::vector<TraceWindow> windows;   ///< "agg" lines, stream order

  /// True iff the writer hit its event cap and dropped lines: the event
  /// list is a prefix, not the whole run, and the auditor must refuse to
  /// certify it.
  bool truncated = false;
  std::uint64_t dropped_events = 0;
  SlotTime truncated_at = 0;  ///< first dropped slot (valid iff truncated)

  /// Largest slot seen across events (0 for an empty trace).
  SlotTime last_slot = 0;

  // Event-kind totals (jam vs genuine collision kept apart).
  std::uint64_t tx_count = 0;
  std::uint64_t rx_count = 0;
  std::uint64_t collision_count = 0;  ///< txn >= 2
  std::uint64_t jam_count = 0;        ///< txn == 1
};

/// Canonical message-kind <-> wire-name mapping (matches the writer).
std::string_view msg_kind_name(MsgKind k) noexcept;
std::optional<MsgKind> msg_kind_from_name(std::string_view name) noexcept;

/// The complete set of `ev` line kinds a radiomc.trace/v2 stream may
/// contain. This table is the schema's source of truth: the writer
/// (telemetry/jsonl_sink.cpp) must emit only these kinds and all of these
/// kinds, which radiomc_lint's trace-kind-table rule checks statically, so
/// the v2 wire format cannot drift without both sides changing together.
inline constexpr std::string_view kTraceLineKinds[] = {
    "schema",     ///< header: version, protocol, slot algebra, BFS levels
    "tx",         ///< a station transmitted
    "rx",         ///< clean single-transmitter delivery
    "coll",       ///< collision (txn >= 2) or jam-killed reception (txn == 1)
    "agg",        ///< per-window tx/rx/coll/jam aggregate
    "truncated",  ///< the writer hit its event cap; the trace is a prefix
};

/// True iff `ev` is one of kTraceLineKinds.
bool is_trace_line_kind(std::string_view ev) noexcept;

/// Kinds that climb the BFS tree child -> parent (collection §4, the
/// upbound half of p2p §5, nack repair, setup reports); the lifecycle
/// builder treats an rx of such a kind with `from_parent == node` as an
/// accepted hop.
bool is_upbound_kind(MsgKind k) noexcept;

}  // namespace radiomc::analysis
