#pragma once

// Report rendering for the analysis subsystem: one JSON document
// (`radiomc.trace.report/v1`) combining the trace summary, the audit
// verdicts and the anomaly scan, plus the human-readable table printers
// behind `radiomc_trace report` / `lifecycle` / `audit`.

#include <ostream>
#include <string>
#include <vector>

#include "analysis/anomaly.h"
#include "analysis/conformance.h"
#include "analysis/lifecycle.h"
#include "analysis/trace_event.h"

namespace radiomc::analysis {

inline constexpr const char* kReportSchemaVersion = "radiomc.trace.report/v1";

/// Serializes the full report as one JSON document.
std::string report_json(const Trace& trace,
                        const std::vector<FlightRecord>& flights,
                        const AuditReport& audit,
                        const AnomalyReport& anomalies);

/// Writes report_json to `path`; false on I/O failure.
bool write_report_file(const std::string& path, const Trace& trace,
                       const std::vector<FlightRecord>& flights,
                       const AuditReport& audit,
                       const AnomalyReport& anomalies);

// --- Human-readable printers -------------------------------------------

/// Trace summary + audit table + anomalies (the `report` subcommand).
void print_report(std::ostream& out, const Trace& trace,
                  const std::vector<FlightRecord>& flights,
                  const AuditReport& audit, const AnomalyReport& anomalies);

/// Audit table only (the `audit` subcommand).
void print_audit(std::ostream& out, const AuditReport& audit);

/// One-line-per-flight summary table.
void print_flight_table(std::ostream& out,
                        const std::vector<FlightRecord>& flights);

/// Hop-by-hop timeline of one flight (the `lifecycle` subcommand with
/// --origin/--seq).
void print_flight_detail(std::ostream& out, const FlightRecord& flight);

}  // namespace radiomc::analysis
