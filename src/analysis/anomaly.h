#pragma once

// Anomaly scanner: heuristics over a trace that flag *where to look*, not
// theorem violations — the auditor (conformance.h) owns those. Three
// scans:
//
//  * stall windows — slot ranges with no clean delivery anywhere, longer
//    than a threshold (default 10 phases). In a healthy collection run
//    Thm 4.1 keeps deliveries flowing every few phases; a long silence
//    usually means jamming, a crashed cut vertex, or a scheduling bug.
//  * collision hot spots by BFS level — levels absorbing far more than
//    their share of genuine collisions (jams are reported alongside but
//    tallied separately; they indict the fault plan, not the protocol).
//  * starved levels — levels that stayed occupied for many consecutive
//    phases without forwarding anything; the queueing analysis (§4, Hsu–
//    Burke) says backlogs drain geometrically, so a long starve streak is
//    the signature of a livelocked or shadowed level.

#include <cstdint>
#include <vector>

#include "analysis/trace_event.h"

namespace radiomc::analysis {

struct StallWindow {
  SlotTime from = 0;  ///< last slot with a clean delivery before the gap
  SlotTime to = 0;    ///< next slot with one (or last_slot at trace end)
  SlotTime gap() const noexcept { return to - from; }
};

struct LevelStats {
  std::uint32_t level = 0;
  std::uint64_t collisions = 0;  ///< genuine (txn >= 2) at this level
  std::uint64_t jams = 0;        ///< fault-injected (txn == 1)
  std::uint64_t deliveries = 0;
  bool hot = false;  ///< collision outlier (see AnomalyOptions)
};

struct StarvedLevel {
  std::uint32_t level = 0;
  std::uint64_t phases = 0;  ///< longest occupied-without-advance streak
};

struct AnomalyOptions {
  /// Stall threshold in slots; 0 = auto (10 phases when the slot
  /// structure is known, else 512 slots).
  SlotTime stall_slots = 0;
  /// A level is a collision hot spot when its genuine-collision count
  /// exceeds `hot_factor` x the per-level mean and at least `hot_min`.
  double hot_factor = 2.0;
  std::uint64_t hot_min = 16;
  /// Minimum occupied-without-advance streak (in phases) to flag.
  std::uint64_t starve_min_phases = 32;
};

struct AnomalyReport {
  SlotTime stall_threshold = 0;  ///< resolved threshold actually used
  std::vector<StallWindow> stalls;
  std::vector<LevelStats> levels;        ///< one per level; empty w/o levels
  std::vector<StarvedLevel> starved;     ///< flagged levels only

  bool clean() const noexcept {
    if (!stalls.empty() || !starved.empty()) return false;
    for (const LevelStats& l : levels)
      if (l.hot) return false;
    return true;
  }
};

AnomalyReport scan_anomalies(const Trace& trace,
                             const AnomalyOptions& opts = {});

}  // namespace radiomc::analysis
