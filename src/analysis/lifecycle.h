#pragma once

// Message-lifecycle builder: joins the flat event stream back into one
// flight record per payload identity (origin, seq) — the §4 collection
// view of a message climbing the BFS tree hop by hop.
//
// A *hop* is an accepted child -> parent delivery: an rx of an upbound
// kind whose `fp` (transmitter's BFS parent) equals the receiving node —
// exactly the accept rule the stations apply. Overheard copies (fp !=
// receiver) are counted but are not hops. Each hop is then matched to its
// deterministic acknowledgement (§3): the first ack-rx at the hop's child
// carrying the same (origin, seq) and dest == child, at or after the
// hop's slot. Fault-free with ack subslots on, that ack lands exactly one
// slot later (Thm 3.1) — the conformance auditor asserts this; the
// builder merely records what it finds, including "the run ended before
// the ack subslot", which is expected for the final hop into the root
// because run_collection halts the moment the root holds everything.

#include <cstdint>
#include <vector>

#include "analysis/trace_event.h"

namespace radiomc::analysis {

struct Hop {
  SlotTime rx_slot = 0;
  NodeId from = kNoNode;  ///< child (transmitter)
  NodeId to = kNoNode;    ///< parent (receiver)
  std::uint32_t from_level = TraceSchema::kNoLevel;
  std::uint32_t to_level = TraceSchema::kNoLevel;
  bool acked = false;
  SlotTime ack_slot = 0;  ///< valid iff acked
  /// The run ended before the hop's ack subslot (rx_slot + 1 > last
  /// slot): no ack could have been observed even in a perfect run.
  bool ack_pending_at_end = false;

  /// Ack round-trip latency in slots (valid iff acked).
  SlotTime ack_latency() const noexcept {
    return acked ? ack_slot - rx_slot : 0;
  }
};

struct FlightRecord {
  NodeId origin = kNoNode;
  std::uint32_t seq = 0;

  /// Every transmission carrying this payload as an upbound kind (data /
  /// nack / setup_report), successful or not.
  std::uint64_t transmissions = 0;
  /// Accepted child -> parent hops, in slot order.
  std::vector<Hop> hops;
  /// Clean deliveries that were not accepted hops (overheard copies).
  std::uint64_t overheard = 0;

  bool reached_root = false;  ///< a hop landed on the level-0 node
  SlotTime first_slot = 0;    ///< first transmission (or first hop)
  SlotTime completed_slot = 0;  ///< slot of the hop into the root

  /// Transmissions beyond the one-per-hop minimum. With D hops delivered,
  /// a loss-free run with perfect slotting would need exactly D
  /// transmissions; the excess is Decay retries plus collision losses.
  std::uint64_t retransmissions() const noexcept {
    const std::uint64_t need = hops.size();
    return transmissions > need ? transmissions - need : 0;
  }

  /// Total slots this payload spent waiting between consecutive hops
  /// (per-BFS-level waiting time, summed). 0 with fewer than two hops.
  SlotTime total_inter_hop_wait() const noexcept {
    SlotTime w = 0;
    for (std::size_t i = 1; i < hops.size(); ++i)
      w += hops[i].rx_slot - hops[i - 1].rx_slot;
    return w;
  }
};

/// Builds one FlightRecord per (origin, seq) seen in upbound tx/rx events,
/// ordered by (origin, seq). Requires nothing beyond the trace itself;
/// level annotations are filled only when the schema carries levels.
std::vector<FlightRecord> build_lifecycles(const Trace& trace);

/// Finds a flight by identity; nullptr when absent.
const FlightRecord* find_flight(const std::vector<FlightRecord>& flights,
                                NodeId origin, std::uint32_t seq) noexcept;

}  // namespace radiomc::analysis
