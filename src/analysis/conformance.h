#pragma once

// Theory-conformance auditor: replays a trace against the paper's
// quantitative guarantees and reports pass/fail per check. Statistical
// bounds (Decay reception, Thm 4.1 advance rate) are tested with Wilson
// score intervals — a check fails only when the *upper* confidence bound
// sits below the theoretical rate, so honest sampling noise never flunks
// a run; structural guarantees (Thm 3.1 ack certainty, exactly-once,
// prefix monotonicity) are exact.
//
// Checks:
//   trace-complete     the writer dropped no events (truncation refusal)
//   ack-certainty      every accepted data hop is acked in the very next
//                      slot (Thm 3.1) — exact, fault-free
//   exactly-once       each payload is accepted by the root exactly once
//   prefix-monotone    per-origin seqs reach the root in increasing order
//   decay-reception    P[node with >=1 audible neighbor in a phase hears
//                      a clean message] >= 1/2 (Decay lemma, §1.4)
//   advance-rate       P[occupied level forwards >=1 message per phase]
//                      >= mu = e^-1 (1 - e^-1) ~ 0.2325 (Thm 4.1)
//
// End-of-trace exemptions: run_collection halts the instant the root
// holds everything, mid-phase, so (a) hops whose ack subslot falls after
// the last slot are exempt from ack-certainty and (b) the final partial
// phase is excluded from both statistical denominators — otherwise every
// audit of a successful run would end on a biased sample.

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/lifecycle.h"
#include "analysis/trace_event.h"

namespace radiomc::analysis {

/// Thm 4.1's per-phase advance probability mu = e^-1 (1 - e^-1).
double mu_advance() noexcept;

enum class CheckStatus : std::uint8_t { kPass, kFail, kSkip };

struct CheckResult {
  std::string id;
  std::string detail;  ///< human explanation (why skipped / what failed)
  CheckStatus status = CheckStatus::kSkip;

  // Statistical checks only (trials > 0): observed proportion vs bound.
  double observed = 0.0;
  double bound = 0.0;
  std::uint64_t successes = 0;
  std::uint64_t trials = 0;
  double wilson_low = 0.0;
  double wilson_high = 0.0;
};

struct AuditOptions {
  /// Normal quantile for the Wilson intervals (~99.5% two-sided default,
  /// matching the repo's statistical tests).
  double z = 2.576;
  /// Statistical checks with fewer trials than this are skipped, not
  /// judged — intervals on a handful of samples certify nothing.
  std::uint64_t min_samples = 8;
};

struct AuditReport {
  std::vector<CheckResult> checks;
  bool pass = true;  ///< no check failed (skips do not fail an audit)

  // Run summary, for the report printer.
  std::uint64_t flights_total = 0;
  std::uint64_t flights_reached_root = 0;

  const CheckResult* find(const std::string& id) const noexcept {
    for (const CheckResult& c : checks)
      if (c.id == id) return &c;
    return nullptr;
  }
};

/// Runs every applicable check. `flights` must be build_lifecycles(trace).
AuditReport audit_trace(const Trace& trace,
                        const std::vector<FlightRecord>& flights,
                        const AuditOptions& opts = {});

// --- Shared phase-activity tallies (auditor + anomaly scanner) ---------

/// Per-(phase, level) and per-(phase, node) activity over the *complete*
/// phases of a trace (the final partial phase is excluded; see header
/// comment). Requires schema.slots; levels-dependent fields additionally
/// require schema.levels.
struct PhaseTallies {
  std::uint64_t complete_phases = 0;
  std::uint64_t slots_per_phase = 0;

  // Thm 4.1 sample: (phase, level >= 1) pairs.
  std::uint64_t occupied_level_phases = 0;  ///< >=1 upbound data tx at level
  std::uint64_t advanced_level_phases = 0;  ///< occupied and >=1 accepted hop

  // Decay-lemma sample: (phase, node) pairs.
  std::uint64_t audible_node_phases = 0;  ///< >=1 clean rx or genuine coll
  std::uint64_t clean_node_phases = 0;    ///< >=1 clean rx among those

  /// Per BFS level: longest run of consecutive complete phases in which
  /// the level was occupied but advanced nothing. Empty without levels.
  std::vector<std::uint64_t> longest_starve_by_level;
};

PhaseTallies tally_phases(const Trace& trace);

}  // namespace radiomc::analysis
