#include "analysis/conformance.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

#include "support/stats.h"

namespace radiomc::analysis {

double mu_advance() noexcept {
  const double inv_e = std::exp(-1.0);
  return inv_e * (1.0 - inv_e);
}

namespace {

std::string fmt_ratio(std::uint64_t num, std::uint64_t den) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu/%llu",
                static_cast<unsigned long long>(num),
                static_cast<unsigned long long>(den));
  return buf;
}

/// Accepted child -> parent hop (the §4 accept rule), readable straight
/// off an rx event.
bool is_accepted_hop(const TraceEvent& e) {
  return e.ev == EvKind::kRx && is_upbound_kind(e.kind) &&
         e.from != kNoNode && e.from_parent == e.node;
}

CheckResult check_trace_complete(const Trace& trace) {
  CheckResult c;
  c.id = "trace-complete";
  if (trace.truncated) {
    c.status = CheckStatus::kFail;
    c.detail = "trace truncated at slot " + std::to_string(trace.truncated_at) +
               " (" + std::to_string(trace.dropped_events) +
               " events dropped); refusing to certify an incomplete trace";
  } else {
    c.status = CheckStatus::kPass;
    c.detail = std::to_string(trace.events.size()) + " events, complete";
  }
  return c;
}

CheckResult check_ack_certainty(const Trace& trace,
                                const std::vector<FlightRecord>& flights) {
  CheckResult c;
  c.id = "ack-certainty";
  if (!trace.schema.slots || !trace.schema.slots->ack_subslots) {
    c.detail = "ack subslots disabled or slot structure unknown";
    return c;
  }
  std::uint64_t hops = 0, exempt = 0;
  for (const FlightRecord& f : flights) {
    for (const Hop& h : f.hops) {
      if (h.ack_pending_at_end) {
        ++exempt;
        continue;
      }
      ++hops;
      if (!h.acked) {
        c.status = CheckStatus::kFail;
        c.detail = "hop (" + std::to_string(f.origin) + "," +
                   std::to_string(f.seq) + ") " + std::to_string(h.from) +
                   "->" + std::to_string(h.to) + " at slot " +
                   std::to_string(h.rx_slot) + " never acked (Thm 3.1)";
        return c;
      }
      if (h.ack_slot != h.rx_slot + 1) {
        c.status = CheckStatus::kFail;
        c.detail = "hop (" + std::to_string(f.origin) + "," +
                   std::to_string(f.seq) + ") at slot " +
                   std::to_string(h.rx_slot) + " acked at slot " +
                   std::to_string(h.ack_slot) +
                   ", not the next subslot (Thm 3.1)";
        return c;
      }
    }
  }
  if (hops == 0) {
    c.detail = "no ack-eligible hops in trace";
    return c;
  }
  c.status = CheckStatus::kPass;
  c.detail = std::to_string(hops) + " hops acked in the next subslot" +
             (exempt ? " (" + std::to_string(exempt) +
                           " end-of-trace hops exempt)"
                     : "");
  return c;
}

CheckResult check_exactly_once(const Trace& trace,
                               const std::vector<FlightRecord>& flights) {
  CheckResult c;
  c.id = "exactly-once";
  // A §4 collection guarantee. In protocols with a downbound phase (p2p,
  // broadcast) the root overhears its children relaying data *down*, and
  // those deliveries carry fp == root — indistinguishable at trace level
  // from a second upbound acceptance — so the check is collection-only.
  if (trace.schema.protocol != "collection") {
    c.detail = "protocol is not collection";
    return c;
  }
  const NodeId root = trace.schema.root();
  if (root == kNoNode) {
    c.detail = "no BFS levels in schema; root unknown";
    return c;
  }
  std::uint64_t delivered = 0;
  for (const FlightRecord& f : flights) {
    std::uint64_t at_root = 0;
    for (const Hop& h : f.hops)
      if (h.to == root) ++at_root;
    if (at_root > 1) {
      c.status = CheckStatus::kFail;
      c.detail = "payload (" + std::to_string(f.origin) + "," +
                 std::to_string(f.seq) + ") accepted by the root " +
                 std::to_string(at_root) + " times";
      return c;
    }
    if (at_root == 1) ++delivered;
  }
  if (delivered == 0) {
    c.detail = "no payload reached the root";
    return c;
  }
  c.status = CheckStatus::kPass;
  c.detail = std::to_string(delivered) + " payloads, each accepted once";
  return c;
}

CheckResult check_prefix_monotone(const Trace& trace) {
  CheckResult c;
  c.id = "prefix-monotone";
  if (trace.schema.protocol != "collection") {
    c.detail = "protocol is not collection";
    return c;
  }
  const NodeId root = trace.schema.root();
  if (root == kNoNode) {
    c.detail = "no BFS levels in schema; root unknown";
    return c;
  }
  // FIFO relaying means the root must see each origin's seqs in
  // increasing order; a regression would indicate queue reordering.
  std::map<NodeId, std::uint32_t> next_seq;
  std::uint64_t accepted = 0;
  for (const TraceEvent& e : trace.events) {
    if (!is_accepted_hop(e) || e.node != root ||
        e.kind != MsgKind::kData)
      continue;
    ++accepted;
    auto [it, inserted] = next_seq.try_emplace(e.origin, e.seq);
    if (!inserted) {
      if (e.seq < it->second) {
        c.status = CheckStatus::kFail;
        c.detail = "origin " + std::to_string(e.origin) + " seq " +
                   std::to_string(e.seq) + " reached the root after seq " +
                   std::to_string(it->second) +
                   "; delivered prefix not monotone";
        return c;
      }
      it->second = e.seq;
    }
  }
  if (accepted == 0) {
    c.detail = "no data accepted by the root";
    return c;
  }
  c.status = CheckStatus::kPass;
  c.detail = std::to_string(accepted) +
             " root deliveries, per-origin order monotone";
  return c;
}

CheckResult statistical_check(const char* id, const char* what,
                              std::uint64_t successes, std::uint64_t trials,
                              double bound, const AuditOptions& opts) {
  CheckResult c;
  c.id = id;
  c.bound = bound;
  c.successes = successes;
  c.trials = trials;
  if (trials < opts.min_samples) {
    c.detail = std::string("only ") + fmt_ratio(successes, trials) + " " +
               what + " samples (< " + std::to_string(opts.min_samples) +
               "); not judged";
    return c;
  }
  ProportionEstimate p{successes, trials};
  c.observed = p.point();
  c.wilson_low = p.wilson_lower(opts.z);
  c.wilson_high = p.wilson_upper(opts.z);
  // A bound violation must be statistically unambiguous: fail only when
  // even the upper Wilson limit cannot reach the theoretical rate.
  if (c.wilson_high < bound) {
    c.status = CheckStatus::kFail;
    c.detail = std::string(what) + " rate " + fmt(c.observed) + " (" +
               fmt_ratio(successes, trials) + "), Wilson upper " +
               fmt(c.wilson_high) + " < bound " + fmt(bound);
  } else {
    c.status = CheckStatus::kPass;
    c.detail = std::string(what) + " rate " + fmt(c.observed) + " (" +
               fmt_ratio(successes, trials) + ") vs bound " + fmt(bound);
  }
  return c;
}

}  // namespace

PhaseTallies tally_phases(const Trace& trace) {
  PhaseTallies t;
  if (!trace.schema.slots) return t;
  const PhaseClock clock(*trace.schema.slots);
  t.slots_per_phase = clock.slots_per_phase();
  t.complete_phases = (trace.last_slot + 1) / t.slots_per_phase;
  if (t.complete_phases == 0) return t;

  const TraceSchema& sc = trace.schema;
  const bool have_levels = sc.has_levels();

  // Bit 1 = occupied / audible, bit 2 = advanced / clean-rx.
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint8_t> level_phase;
  std::map<std::pair<NodeId, std::uint64_t>, std::uint8_t> node_phase;

  for (const TraceEvent& e : trace.events) {
    const std::uint64_t phase = clock.decode(e.t).phase;
    if (phase >= t.complete_phases) continue;

    if (e.ev == EvKind::kTx && is_upbound_kind(e.kind) && have_levels) {
      const std::uint32_t lvl = sc.level_of(e.node);
      if (lvl != TraceSchema::kNoLevel && lvl >= 1)
        level_phase[{lvl, phase}] |= 1;
    } else if (e.ev == EvKind::kRx) {
      node_phase[{e.node, phase}] |= 1 | 2;
      if (is_accepted_hop(e) && have_levels) {
        const std::uint32_t lvl = sc.level_of(e.from);
        if (lvl != TraceSchema::kNoLevel && lvl >= 1)
          level_phase[{lvl, phase}] |= 2;
      }
    } else if (e.ev == EvKind::kCollision && e.is_collision_genuine()) {
      // The Decay lemma conditions on >=1 transmitting neighbor; a
      // genuine collision is audible evidence of that. Jams (txn == 1)
      // are fault injection, outside the lemma's model.
      node_phase[{e.node, phase}] |= 1;
    }
  }

  std::uint32_t max_level = 0;
  if (have_levels)
    for (std::uint32_t l : sc.levels)
      if (l != TraceSchema::kNoLevel) max_level = std::max(max_level, l);
  t.longest_starve_by_level.assign(have_levels ? max_level + 1 : 0, 0);

  // level_phase is ordered (level, phase), so consecutive-phase starve
  // streaks can be scanned in one pass per level.
  std::uint32_t cur_level = TraceSchema::kNoLevel;
  std::uint64_t prev_phase = 0, streak = 0;
  for (const auto& [key, bits] : level_phase) {
    const auto [lvl, phase] = key;
    if ((bits & 1) == 0) continue;  // advance without local tx: not a sample
    ++t.occupied_level_phases;
    const bool advanced = (bits & 2) != 0;
    if (advanced) ++t.advanced_level_phases;

    if (lvl != cur_level || phase != prev_phase + 1) streak = 0;
    cur_level = lvl;
    prev_phase = phase;
    if (advanced) {
      streak = 0;
    } else {
      ++streak;
      if (lvl < t.longest_starve_by_level.size())
        t.longest_starve_by_level[lvl] =
            std::max(t.longest_starve_by_level[lvl], streak);
    }
  }

  for (const auto& [key, bits] : node_phase) {
    (void)key;
    ++t.audible_node_phases;
    if ((bits & 2) != 0) ++t.clean_node_phases;
  }
  return t;
}

AuditReport audit_trace(const Trace& trace,
                        const std::vector<FlightRecord>& flights,
                        const AuditOptions& opts) {
  AuditReport report;
  report.flights_total = flights.size();
  for (const FlightRecord& f : flights)
    if (f.reached_root) ++report.flights_reached_root;

  report.checks.push_back(check_trace_complete(trace));
  const bool complete = report.checks.back().status == CheckStatus::kPass;

  if (complete) {
    report.checks.push_back(check_ack_certainty(trace, flights));
    report.checks.push_back(check_exactly_once(trace, flights));
    report.checks.push_back(check_prefix_monotone(trace));

    PhaseTallies t = tally_phases(trace);
    if (trace.schema.slots) {
      report.checks.push_back(statistical_check(
          "decay-reception", "audible-phase clean-reception",
          t.clean_node_phases, t.audible_node_phases, 0.5, opts));
      if (trace.schema.has_levels()) {
        report.checks.push_back(statistical_check(
            "advance-rate", "occupied-level per-phase advance",
            t.advanced_level_phases, t.occupied_level_phases, mu_advance(),
            opts));
      } else {
        CheckResult c;
        c.id = "advance-rate";
        c.detail = "no BFS levels in schema";
        report.checks.push_back(c);
      }
    } else {
      for (const char* id : {"decay-reception", "advance-rate"}) {
        CheckResult c;
        c.id = id;
        c.detail = "no slot structure in schema";
        report.checks.push_back(c);
      }
    }
  } else {
    // An incomplete trace certifies nothing: every other check is skipped
    // rather than judged on a prefix.
    for (const char* id : {"ack-certainty", "exactly-once", "prefix-monotone",
                           "decay-reception", "advance-rate"}) {
      CheckResult c;
      c.id = id;
      c.detail = "skipped: trace incomplete";
      report.checks.push_back(c);
    }
  }

  for (const CheckResult& c : report.checks)
    if (c.status == CheckStatus::kFail) report.pass = false;
  return report;
}

}  // namespace radiomc::analysis
