#include "analysis/anomaly.h"

#include <algorithm>

#include "analysis/conformance.h"

namespace radiomc::analysis {

AnomalyReport scan_anomalies(const Trace& trace, const AnomalyOptions& opts) {
  AnomalyReport rep;
  const TraceSchema& sc = trace.schema;

  // Resolve the stall threshold.
  if (opts.stall_slots != 0) {
    rep.stall_threshold = opts.stall_slots;
  } else if (sc.slots) {
    rep.stall_threshold = 10 * PhaseClock(*sc.slots).slots_per_phase();
  } else {
    rep.stall_threshold = 512;
  }

  // --- Stall windows: gaps between clean deliveries ---------------------
  bool any_rx = false;
  SlotTime last_rx = 0;
  for (const TraceEvent& e : trace.events) {
    if (e.ev != EvKind::kRx) continue;
    if (any_rx && e.t > last_rx && e.t - last_rx > rep.stall_threshold)
      rep.stalls.push_back({last_rx, e.t});
    last_rx = e.t;
    any_rx = true;
  }
  // Silence at the very end of the trace counts too (e.g. the protocol
  // wedged and the slot budget ran out).
  if (any_rx && trace.last_slot > last_rx &&
      trace.last_slot - last_rx > rep.stall_threshold)
    rep.stalls.push_back({last_rx, trace.last_slot});

  // --- Per-level collision / jam tallies --------------------------------
  if (sc.has_levels()) {
    std::uint32_t max_level = 0;
    for (std::uint32_t l : sc.levels)
      if (l != TraceSchema::kNoLevel) max_level = std::max(max_level, l);
    rep.levels.resize(max_level + 1);
    for (std::uint32_t i = 0; i <= max_level; ++i) rep.levels[i].level = i;

    for (const TraceEvent& e : trace.events) {
      const std::uint32_t lvl = sc.level_of(e.node);
      if (lvl == TraceSchema::kNoLevel || lvl > max_level) continue;
      if (e.ev == EvKind::kRx) {
        ++rep.levels[lvl].deliveries;
      } else if (e.ev == EvKind::kCollision) {
        if (e.is_collision_genuine()) ++rep.levels[lvl].collisions;
        else ++rep.levels[lvl].jams;
      }
    }

    std::uint64_t total_coll = 0;
    for (const LevelStats& l : rep.levels) total_coll += l.collisions;
    const double mean =
        rep.levels.empty()
            ? 0.0
            : static_cast<double>(total_coll) /
                  static_cast<double>(rep.levels.size());
    for (LevelStats& l : rep.levels) {
      l.hot = l.collisions >= opts.hot_min &&
              static_cast<double>(l.collisions) > opts.hot_factor * mean;
    }
  }

  // --- Starved levels (from the shared phase tallies) -------------------
  if (sc.slots && sc.has_levels()) {
    const PhaseTallies t = tally_phases(trace);
    for (std::uint32_t lvl = 0; lvl < t.longest_starve_by_level.size();
         ++lvl) {
      if (t.longest_starve_by_level[lvl] >= opts.starve_min_phases)
        rep.starved.push_back({lvl, t.longest_starve_by_level[lvl]});
    }
  }
  return rep;
}

}  // namespace radiomc::analysis
