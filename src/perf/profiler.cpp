#include "perf/profiler.h"

namespace radiomc::perf {

SpanNode* SpanNode::child(std::string_view child_name) {
  // Linear scan: span trees are a handful of distinct names per level
  // (taxonomy, not data), and first-open order is the natural report
  // order — a map would sort alphabetically and cost an allocation per
  // lookup for the key.
  for (const auto& c : children)
    if (c->name == child_name) return c.get();
  children.push_back(std::make_unique<SpanNode>());
  children.back()->name = std::string(child_name);
  return children.back().get();
}

Profiler::Profiler()
    : root_(std::make_unique<SpanNode>()), cpu0_ns_(process_cpu_ns()) {
  root_->name = "run";
  root_->count = 1;
  stack_.push_back({root_.get(), 0});
}

void Profiler::begin(std::string_view name) {
  SpanNode* node = stack_.back().node->child(name);
  stack_.push_back({node, watch_.elapsed_ns()});
}

void Profiler::end() {
  if (stack_.size() <= 1) return;  // unbalanced end(): keep the root frame
  const Frame f = stack_.back();
  stack_.pop_back();
  const std::uint64_t elapsed = watch_.elapsed_ns() - f.start_ns;
  SpanNode* n = f.node;
  if (n->count == 0 || elapsed < n->min_ns) n->min_ns = elapsed;
  if (elapsed > n->max_ns) n->max_ns = elapsed;
  ++n->count;
  n->total_ns += elapsed;
  // The root's inclusive time tracks the frontier of completed work.
  const std::uint64_t now = f.start_ns + elapsed;
  if (now > root_->total_ns) root_->total_ns = now;
}

void Profiler::count(std::string_view name, std::uint64_t delta) {
  counters_[std::string(name)] += delta;
}

}  // namespace radiomc::perf
