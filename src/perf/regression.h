#pragma once

// The perf regression gate: diffs two machine-readable performance
// documents — `radiomc.perf/v1` run reports or `radiomc.bench/v1` tables
// (the BENCH_ENGINE.json trajectory) — and decides whether the current
// run regressed past a threshold against the baseline.
//
// Comparison model. Every comparable metric is normalized to
// "bigger-is-better" (throughputs stay as-is; wall times invert), and a
// metric regresses when
//     current < baseline / threshold
// with threshold > 1 (e.g. 2.0 = "flag only a >2x slowdown"). The gate
// starts generous: CI hardware is noisy and shared, so the first job of
// the trajectory is to exist; tightening the threshold is a one-line CI
// change once points accumulate.
//
// Bench tables are matched row-to-row by the composite key of all string
// members plus the integer "n" (topology x size x workload); a baseline
// row with no current counterpart is itself a finding (coverage loss),
// while new rows pass freely (the trajectory may grow).

#include <cstdint>
#include <string>
#include <vector>

#include "perf/json_value.h"

namespace radiomc::perf {

struct DiffOptions {
  /// Slowdown factor that counts as a regression; must be > 1.
  double threshold = 2.0;
};

struct DiffEntry {
  std::string metric;    ///< e.g. "slots_per_sec[grid/1024/busy]"
  double baseline = 0.0; ///< in the metric's native unit
  double current = 0.0;
  /// current/baseline in bigger-is-better orientation (>1 = improved);
  /// 0 when the metric vanished from the current document.
  double ratio = 0.0;
  bool regressed = false;
};

struct DiffReport {
  bool comparable = false;  ///< schemas recognized and matching
  std::string error;        ///< non-empty iff !comparable
  std::vector<DiffEntry> entries;

  bool any_regression() const noexcept {
    for (const auto& e : entries)
      if (e.regressed) return true;
    return false;
  }
};

/// Diffs two parsed documents of the same schema. Unknown or mismatched
/// schemas yield comparable = false with an explanation, not a throw.
DiffReport diff_reports(const JsonValue& baseline, const JsonValue& current,
                        const DiffOptions& opt = {});

/// Renders the report as a fixed-width text table (for stdout).
std::string diff_to_text(const DiffReport& r, const DiffOptions& opt);

/// Renders the report as a `radiomc.perfdiff/v1` JSON document.
std::string diff_to_json(const DiffReport& r, const DiffOptions& opt);

}  // namespace radiomc::perf
