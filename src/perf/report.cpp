#include "perf/report.h"

#include <fstream>

#include "telemetry/json_writer.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif
#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace radiomc::perf {

std::uint64_t peak_rss_bytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

std::uint64_t alloc_in_use_bytes() noexcept {
#if defined(__GLIBC__)
  const struct mallinfo2 mi = mallinfo2();
  return static_cast<std::uint64_t>(mi.uordblks);
#else
  return 0;
#endif
}

namespace {

void write_span(telemetry::JsonWriter& w, const SpanNode& n) {
  w.begin_object();
  w.member("name", n.name);
  w.member("count", n.count);
  w.member("total_ns", n.total_ns);
  w.member("min_ns", n.min_ns);
  w.member("max_ns", n.max_ns);
  if (!n.children.empty()) {
    w.key("children");
    w.begin_array();
    for (const auto& c : n.children) write_span(w, *c);
    w.end_array();
  }
  w.end_object();
}

}  // namespace

std::string to_perf_json(const Profiler& p, const RunInfo& run) {
  std::string buf;
  telemetry::JsonWriter w(&buf);
  const double wall_ms = static_cast<double>(p.elapsed_ns()) / 1e6;
  w.begin_object();
  w.member("schema", kPerfSchemaVersion);
  w.key("run");
  w.begin_object();
  w.member("tool", run.tool);
  w.member("command", run.command);
  w.member("jobs", static_cast<std::uint64_t>(run.jobs));
  w.end_object();
  w.member("wall_ms", wall_ms);
  w.member("cpu_ms", static_cast<double>(p.cpu_elapsed_ns()) / 1e6);
  w.member("slots", run.slots);
  w.member("slots_per_sec",
           wall_ms > 0.0
               ? static_cast<double>(run.slots) / (wall_ms / 1000.0)
               : 0.0);
  w.member("peak_rss_bytes", peak_rss_bytes());
  w.member("alloc_in_use_bytes", alloc_in_use_bytes());
  w.member("open_spans", static_cast<std::uint64_t>(p.open_depth()));
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : p.counters()) w.member(name, value);
  w.end_object();
  w.key("spans");
  w.begin_array();
  for (const auto& c : p.root().children) write_span(w, *c);
  w.end_array();
  w.end_object();
  return buf;
}

bool write_perf_json_file(const Profiler& p, const RunInfo& run,
                          const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_perf_json(p, run) << '\n';
  return out.good();
}

}  // namespace radiomc::perf
