#pragma once

// A small recursive-descent JSON parser producing an immutable value tree.
//
// This is the *offline tooling* parser: `radiomc_perf` must read back the
// documents the repo's writers emit (radiomc.perf/v1 reports and
// radiomc.bench/v1 tables) in order to diff two runs, and the perf test
// suite uses it to pin the report schema. The online trace reader
// (analysis/trace_reader.h) stays the deliberately narrow line-oriented
// parser it is — hot-path strictness there, generality here.
//
// Subset: RFC 8259 minus \uXXXX escapes beyond Latin-1 fidelity (escaped
// code points are decoded to UTF-8). Numbers are held as double plus an
// exact-integer flag, which covers every field our writers produce.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace radiomc::perf {

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject
  };

  JsonValue() : kind_(Kind::kNull) {}

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  bool as_bool(bool dflt = false) const noexcept {
    return is_bool() ? bool_ : dflt;
  }
  double as_double(double dflt = 0.0) const noexcept {
    return is_number() ? num_ : dflt;
  }
  std::int64_t as_int(std::int64_t dflt = 0) const noexcept {
    return is_number() ? static_cast<std::int64_t>(num_) : dflt;
  }
  const std::string& as_string() const noexcept { return str_; }

  const std::vector<JsonValue>& items() const noexcept { return arr_; }
  /// Object members in document order (writers emit deterministically, so
  /// order is meaningful for golden comparisons).
  const std::vector<std::pair<std::string, JsonValue>>& members()
      const noexcept {
    return obj_;
  }

  /// Member lookup; null-kind sentinel when absent or not an object.
  const JsonValue& at(std::string_view key) const noexcept;
  /// True iff the member exists (even with a null value).
  bool has(std::string_view key) const noexcept { return at_present(key); }

  // Construction (parser + tests building synthetic documents).
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  bool at_present(std::string_view key) const noexcept;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

struct JsonParseResult {
  bool ok = false;
  std::string error;   ///< non-empty iff !ok; includes a byte offset
  JsonValue value;     ///< valid iff ok
};

/// Parses one JSON document; trailing whitespace is permitted, trailing
/// garbage is an error.
JsonParseResult parse_json(std::string_view text);

/// Reads and parses a whole file; a missing/unreadable file is an error,
/// not an exception.
JsonParseResult parse_json_file(const std::string& path);

}  // namespace radiomc::perf
