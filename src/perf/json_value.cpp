#include "perf/json_value.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

namespace radiomc::perf {

namespace {
const JsonValue kNullSentinel;
}  // namespace

const JsonValue& JsonValue::at(std::string_view key) const noexcept {
  for (const auto& [k, v] : obj_)
    if (k == key) return v;
  return kNullSentinel;
}

bool JsonValue::at_present(std::string_view key) const noexcept {
  for (const auto& [k, v] : obj_) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}
JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  return v;
}
JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}
JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.arr_ = std::move(items);
  return v;
}
JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.obj_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult r;
    JsonValue v;
    if (!parse_value(&v)) {
      r.error = error_;
      return r;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing garbage after document");
      r.error = error_;
      return r;
    }
    r.ok = true;
    r.value = std::move(v);
    return r;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool fail(const std::string& what) {
    if (error_.empty())
      error_ = what + " at byte " + std::to_string(pos_);
    return false;
  }

  bool expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c)
      return fail(std::string("expected '") + c + "'");
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue* out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = JsonValue::make_string(std::move(s));
        return true;
      }
      case 't':
        if (text_.substr(pos_, 4) != "true") return fail("bad literal");
        pos_ += 4;
        *out = JsonValue::make_bool(true);
        return true;
      case 'f':
        if (text_.substr(pos_, 5) != "false") return fail("bad literal");
        pos_ += 5;
        *out = JsonValue::make_bool(false);
        return true;
      case 'n':
        if (text_.substr(pos_, 4) != "null") return fail("bad literal");
        pos_ += 4;
        *out = JsonValue::make_null();
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out) {
    if (!expect('{')) return false;
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      *out = JsonValue::make_object(std::move(members));
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      JsonValue v;
      if (!parse_value(&v)) return false;
      members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        *out = JsonValue::make_object(std::move(members));
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue* out) {
    if (!expect('[')) return false;
    std::vector<JsonValue> items;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *out = JsonValue::make_array(std::move(items));
      return true;
    }
    for (;;) {
      JsonValue v;
      if (!parse_value(&v)) return false;
      items.push_back(std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        *out = JsonValue::make_array(std::move(items));
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string* out) {
    if (!expect('"')) return false;
    std::string s;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        *out = std::move(s);
        return true;
      }
      if (c != '\\') {
        s += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': s += '"'; break;
        case '\\': s += '\\'; break;
        case '/': s += '/'; break;
        case 'b': s += '\b'; break;
        case 'f': s += '\f'; break;
        case 'n': s += '\n'; break;
        case 'r': s += '\r'; break;
        case 't': s += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad \\u escape digit");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our writers; a lone surrogate encodes as-is).
          if (cp < 0x80) {
            s += static_cast<char>(cp);
          } else if (cp < 0x800) {
            s += static_cast<char>(0xC0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            s += static_cast<char>(0xE0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* endp = nullptr;
    const double d = std::strtod(token.c_str(), &endp);
    if (endp == nullptr || *endp != '\0') {
      pos_ = start;
      return fail("malformed number");
    }
    *out = JsonValue::make_number(d);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

JsonParseResult parse_json(std::string_view text) {
  return Parser(text).run();
}

JsonParseResult parse_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    JsonParseResult r;
    r.error = "cannot open " + path;
    return r;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  JsonParseResult r = parse_json(buf.str());
  if (!r.ok) r.error = path + ": " + r.error;
  return r;
}

}  // namespace radiomc::perf
