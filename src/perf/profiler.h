#pragma once

// In-process profiler: nestable named spans aggregated into a span tree,
// plus free-form counters. The "measure first" layer for the million-node
// engine work — before the slot hot path is rewritten for speed, this is
// what proves a speedup and catches a regression.
//
// Design rules (enforced by the `perf-purity` lint family):
//  * Null-cost when off: every hook takes a `Profiler*`; a null pointer
//    means no clock read, no allocation, no branch beyond the null test.
//    Simulation output is byte-identical with profiling on or off — time
//    flows out into reports, never back into an Rng or a transmit intent.
//  * Write-only from instrumented code: call sites can open spans and bump
//    counters but the API offers them no way to read elapsed time back,
//    so a driver physically cannot condition protocol behavior on timing.
//  * Offline aggregation: the span tree is read (report(), to JSON) only
//    after the run, by the measurement layer itself.
//
// Spans aggregate structurally: the same name opened under the same parent
// accumulates into one node (count, total/min/max ns), so a span opened
// once per setup attempt or once per Decay invocation stays O(1) memory
// however long the run. The profiler is single-threaded by design — one
// per driver thread; parallel trial runners profile at the driver level
// (the same place their telemetry merges).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/stopwatch.h"

namespace radiomc::perf {

/// One aggregated node of the span tree.
struct SpanNode {
  std::string name;
  std::uint64_t count = 0;     ///< completed activations
  std::uint64_t total_ns = 0;  ///< summed inclusive time
  std::uint64_t min_ns = 0;    ///< fastest single activation
  std::uint64_t max_ns = 0;    ///< slowest single activation
  std::vector<std::unique_ptr<SpanNode>> children;  ///< first-open order

  SpanNode* child(std::string_view child_name);
};

class Profiler {
 public:
  Profiler();

  /// Opens a span named `name` nested under the innermost open span.
  /// Prefer the RAII PerfSpan below; begin/end exist for non-scoped
  /// lifetimes (e.g. a span closed by a different callback).
  void begin(std::string_view name);
  /// Closes the innermost open span; unbalanced calls are ignored.
  void end();

  /// Adds `delta` to the free-form counter `name` (e.g. "engine.slots",
  /// "alloc.fallback_paths"). Counters land in the perf report next to the
  /// span tree.
  void count(std::string_view name, std::uint64_t delta = 1);

  /// The synthetic root ("run"); its children are the top-level spans.
  /// total_ns on the root is the time from construction to the last
  /// completed span — read it via report(), not during the run.
  const SpanNode& root() const noexcept { return *root_; }
  const std::map<std::string, std::uint64_t>& counters() const noexcept {
    return counters_;
  }
  /// Open (unclosed) span depth, excluding the root. Zero after a
  /// balanced run; a nonzero value in a report marks a driver bug.
  std::size_t open_depth() const noexcept { return stack_.size() - 1; }

  /// Wall nanoseconds since construction.
  std::uint64_t elapsed_ns() const noexcept { return watch_.elapsed_ns(); }
  /// Process CPU nanoseconds since construction.
  std::uint64_t cpu_elapsed_ns() const noexcept {
    return process_cpu_ns() - cpu0_ns_;
  }

 private:
  struct Frame {
    SpanNode* node;
    std::uint64_t start_ns;
  };

  std::unique_ptr<SpanNode> root_;
  std::vector<Frame> stack_;  ///< stack_[0] is the root frame
  std::map<std::string, std::uint64_t> counters_;
  Stopwatch watch_;
  std::uint64_t cpu0_ns_;
};

/// RAII span: opens on construction, closes on destruction; a null
/// profiler disables it entirely (no clock read). This is the only
/// profiling primitive protocol drivers should touch.
class PerfSpan {
 public:
  PerfSpan(Profiler* p, std::string_view name) : p_(p) {
    if (p_ != nullptr) p_->begin(name);
  }
  ~PerfSpan() {
    if (p_ != nullptr) p_->end();
  }
  PerfSpan(const PerfSpan&) = delete;
  PerfSpan& operator=(const PerfSpan&) = delete;

 private:
  Profiler* p_;
};

}  // namespace radiomc::perf
