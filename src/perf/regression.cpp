#include "perf/regression.h"

#include <algorithm>
#include <cstdio>

#include "telemetry/json_writer.h"

namespace radiomc::perf {

namespace {

/// Appends one bigger-is-better comparison; `baseline <= 0` rows carry no
/// signal (an empty or failed baseline measurement) and are skipped.
void compare(std::vector<DiffEntry>* out, const std::string& metric,
             double baseline, double current, double threshold) {
  if (baseline <= 0.0) return;
  DiffEntry e;
  e.metric = metric;
  e.baseline = baseline;
  e.current = current;
  e.ratio = current / baseline;
  e.regressed = current < baseline / threshold;
  out->push_back(std::move(e));
}

// --- radiomc.perf/v1 ------------------------------------------------------

void walk_spans(const JsonValue& baseline_spans,
                const JsonValue& current_spans, const std::string& prefix,
                const DiffOptions& opt, std::vector<DiffEntry>* out) {
  for (const JsonValue& b : baseline_spans.items()) {
    const std::string name = b.at("name").as_string();
    const JsonValue* cur = nullptr;
    for (const JsonValue& c : current_spans.items())
      if (c.at("name").as_string() == name) {
        cur = &c;
        break;
      }
    const std::string path = prefix.empty() ? name : prefix + "/" + name;
    const double b_ns = b.at("total_ns").as_double();
    // A span that vanished is not a regression by itself (instrumentation
    // may move); only present-in-both spans are timed against each other.
    if (cur == nullptr || b_ns <= 0.0) continue;
    const double c_ns = cur->at("total_ns").as_double();
    // total_ns is smaller-is-better; invert into the common orientation.
    compare(out, "span_speed[" + path + "]", 1e9 / b_ns,
            c_ns > 0.0 ? 1e9 / c_ns : 0.0, opt.threshold);
    walk_spans(b.at("children"), cur->at("children"), path, opt, out);
  }
}

DiffReport diff_perf(const JsonValue& b, const JsonValue& c,
                     const DiffOptions& opt) {
  DiffReport r;
  r.comparable = true;
  compare(&r.entries, "slots_per_sec", b.at("slots_per_sec").as_double(),
          c.at("slots_per_sec").as_double(), opt.threshold);
  // wall_ms is smaller-is-better: compare speeds (1/ms).
  const double b_wall = b.at("wall_ms").as_double();
  const double c_wall = c.at("wall_ms").as_double();
  compare(&r.entries, "run_speed[1/wall_ms]", b_wall > 0 ? 1.0 / b_wall : 0.0,
          c_wall > 0 ? 1.0 / c_wall : 0.0, opt.threshold);
  walk_spans(b.at("spans"), c.at("spans"), "", opt, &r.entries);
  return r;
}

// --- radiomc.bench/v1 -----------------------------------------------------

/// Composite row identity: every string member plus the integer "n",
/// rendered "k=v|k=v|..." in member order (writers emit deterministically).
std::string row_key(const JsonValue& row) {
  std::string key;
  for (const auto& [k, v] : row.members()) {
    if (v.is_string()) {
      key += k + "=" + v.as_string() + "|";
    } else if (k == "n" && v.is_number()) {
      key += "n=" + std::to_string(v.as_int()) + "|";
    }
  }
  return key;
}

/// The throughput-like members a bench row may carry, all bigger-better.
const char* const kRateFields[] = {"slots_per_sec", "node_slots_per_sec",
                                   "ops_per_sec"};

DiffReport diff_bench(const JsonValue& b, const JsonValue& c,
                      const DiffOptions& opt) {
  DiffReport r;
  if (b.at("bench").as_string() != c.at("bench").as_string()) {
    r.error = "bench ids differ: '" + b.at("bench").as_string() + "' vs '" +
              c.at("bench").as_string() + "'";
    return r;
  }
  r.comparable = true;
  for (const JsonValue& brow : b.at("rows").items()) {
    const std::string key = row_key(brow);
    const JsonValue* crow = nullptr;
    for (const JsonValue& cand : c.at("rows").items())
      if (row_key(cand) == key) {
        crow = &cand;
        break;
      }
    bool any_rate = false;
    for (const char* field : kRateFields) {
      if (!brow.has(field)) continue;
      any_rate = true;
      const double base = brow.at(field).as_double();
      compare(&r.entries, std::string(field) + "[" + key + "]", base,
              crow != nullptr ? crow->at(field).as_double() : 0.0,
              opt.threshold);
    }
    // Rows without rate fields (paper-claim tables) still gate coverage:
    // losing a baseline row entirely means the trajectory lost a point.
    if (!any_rate && crow == nullptr) {
      DiffEntry e;
      e.metric = "row_present[" + key + "]";
      e.baseline = 1.0;
      e.ratio = 0.0;
      e.regressed = true;
      r.entries.push_back(std::move(e));
    }
  }
  return r;
}

}  // namespace

DiffReport diff_reports(const JsonValue& baseline, const JsonValue& current,
                        const DiffOptions& opt) {
  DiffReport r;
  if (opt.threshold <= 1.0) {
    r.error = "--threshold must be > 1 (a slowdown factor)";
    return r;
  }
  const std::string bs = baseline.at("schema").as_string();
  const std::string cs = current.at("schema").as_string();
  if (bs != cs) {
    r.error = "schema mismatch: baseline '" + bs + "' vs current '" + cs + "'";
    return r;
  }
  if (bs == "radiomc.perf/v1") return diff_perf(baseline, current, opt);
  if (bs == "radiomc.bench/v1") return diff_bench(baseline, current, opt);
  r.error = "unrecognized schema '" + bs +
            "' (expected radiomc.perf/v1 or radiomc.bench/v1)";
  return r;
}

std::string diff_to_text(const DiffReport& r, const DiffOptions& opt) {
  std::string out;
  char line[512];
  if (!r.comparable) {
    out = "not comparable: " + r.error + "\n";
    return out;
  }
  std::size_t regressions = 0;
  for (const DiffEntry& e : r.entries) {
    if (!e.regressed) continue;
    ++regressions;
    std::snprintf(line, sizeof line,
                  "REGRESSION  %-48s  baseline %.6g  current %.6g  "
                  "(x%.3f, allowed >= x%.3f)\n",
                  e.metric.c_str(), e.baseline, e.current, e.ratio,
                  1.0 / opt.threshold);
    out += line;
  }
  std::snprintf(line, sizeof line,
                "%zu metric(s) compared, %zu regression(s) past the x%.2f "
                "threshold\n",
                r.entries.size(), regressions, opt.threshold);
  out += line;
  return out;
}

std::string diff_to_json(const DiffReport& r, const DiffOptions& opt) {
  std::string buf;
  telemetry::JsonWriter w(&buf);
  w.begin_object();
  w.member("schema", "radiomc.perfdiff/v1");
  w.member("comparable", r.comparable);
  if (!r.comparable) w.member("error", r.error);
  w.member("threshold", opt.threshold);
  w.member("regressions",
           static_cast<std::uint64_t>(std::count_if(
               r.entries.begin(), r.entries.end(),
               [](const DiffEntry& e) { return e.regressed; })));
  w.key("entries");
  w.begin_array();
  for (const DiffEntry& e : r.entries) {
    w.begin_object();
    w.member("metric", e.metric);
    w.member("baseline", e.baseline);
    w.member("current", e.current);
    w.member("ratio", e.ratio);
    w.member("regressed", e.regressed);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return buf;
}

}  // namespace radiomc::perf
