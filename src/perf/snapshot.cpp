#include "perf/snapshot.h"

#include <stdexcept>
#include <utility>

#include "perf/profiler.h"
#include "telemetry/json_writer.h"

namespace radiomc::perf {

SnapshotStreamer::SnapshotStreamer(std::ostream& out,
                                   std::uint64_t every_slots,
                                   const telemetry::MetricsRegistry* metrics,
                                   Profiler* profiler)
    : out_(&out), every_(every_slots), metrics_(metrics),
      profiler_(profiler) {
  write_header();
}

SnapshotStreamer::SnapshotStreamer(const std::string& path,
                                   std::uint64_t every_slots,
                                   const telemetry::MetricsRegistry* metrics,
                                   Profiler* profiler)
    : owned_(std::make_unique<std::ofstream>(path)),
      out_(owned_.get()), every_(every_slots), metrics_(metrics),
      profiler_(profiler) {
  if (!owned_->is_open()) {
    out_ = nullptr;
    return;
  }
  write_header();
}

SnapshotStreamer::~SnapshotStreamer() { finish(); }

void SnapshotStreamer::write_header() {
  if (header_written_ || !ok()) return;
  header_written_ = true;
  std::string buf;
  telemetry::JsonWriter w(&buf);
  w.begin_object();
  w.member("ev", "schema");
  w.member("v", kSnapshotSchemaVersion);
  w.member("every", every_);
  w.end_object();
  *out_ << buf << '\n';
}

void SnapshotStreamer::on_slot_done(SlotTime t) {
  if (finished_ || every_ == 0) return;
  seen_slot_ = t;
  if (t % every_ != 0) return;
  if (!ok()) {
    // A cadence point the stream could not record: count it so the footer
    // (and telemetry) can report the stream as dirty instead of letting a
    // shorter-but-well-formed file masquerade as a complete run.
    ++dropped_;
    return;
  }

  std::string buf;
  telemetry::JsonWriter w(&buf);
  w.begin_object();
  w.member("ev", "snap");
  w.member("slot", static_cast<std::uint64_t>(t));
  w.key("metrics");
  if (metrics_ != nullptr) {
    metrics_->write_json(w);
  } else {
    w.null();
  }
  // The perf member is the one nondeterministic part of a snapshot line;
  // leaving it out entirely when no profiler is attached keeps the
  // profiler-off stream a pure function of the seed (golden-testable).
  if (profiler_ != nullptr) {
    const double interval_ms = interval_watch_.elapsed_ms();
    const std::uint64_t interval_slots =
        static_cast<std::uint64_t>(t - last_snap_slot_);
    w.key("perf");
    w.begin_object();
    w.member("wall_ms", interval_ms);
    w.member("interval_slots_per_sec",
             interval_ms > 0.0
                 ? static_cast<double>(interval_slots) / (interval_ms / 1e3)
                 : 0.0);
    w.end_object();
    interval_watch_.restart();
  }
  w.end_object();
  *out_ << buf << '\n';
  out_->flush();  // the stream should be readable while the run is live
  last_snap_slot_ = t;
  ++snapshots_;
}

void SnapshotStreamer::finish() {
  if (finished_) return;
  finished_ = true;
  if (!ok()) return;
  std::string buf;
  telemetry::JsonWriter w(&buf);
  w.begin_object();
  w.member("ev", "end");
  w.member("slot", static_cast<std::uint64_t>(seen_slot_));
  w.member("snapshots", snapshots_);
  w.member("clean", dropped_ == 0);
  if (dropped_ > 0) w.member("dropped", dropped_);
  w.end_object();
  *out_ << buf << '\n';
  out_->flush();
}

void SnapshotStreamer::validate_flags(bool has_out, bool has_every,
                                      std::uint64_t every_slots) {
  if (has_every && !has_out)
    throw std::invalid_argument(
        "--snapshot-every requires --snapshot-out (nowhere to stream)");
  if (has_out && !has_every)
    throw std::invalid_argument(
        "--snapshot-out requires --snapshot-every (no default cadence)");
  if (has_every && every_slots == 0)
    throw std::invalid_argument(
        "--snapshot-every must be a positive slot count");
}

}  // namespace radiomc::perf
