#pragma once

// Serialization of a Profiler into the versioned `radiomc.perf/v1` JSON
// document, plus process resource sampling (peak RSS, allocator state).
// The document is the per-run half of the perf trajectory; the per-commit
// half is BENCH_ENGINE.json (bench_micro). `radiomc_perf` diffs either
// kind and gates regressions (src/perf/regression.h).
//
// Document shape:
//   {"schema":"radiomc.perf/v1",
//    "run":{"tool":"radiomc_sim","command":"collect","jobs":1},
//    "wall_ms":..,"cpu_ms":..,
//    "slots":N,"slots_per_sec":..,          // 0 / omitted-ish when no slots
//    "peak_rss_bytes":..,"alloc_in_use_bytes":..,
//    "open_spans":0,                        // nonzero marks a driver bug
//    "counters":{"name":value,...},
//    "spans":[{"name":..,"count":..,"total_ns":..,"min_ns":..,"max_ns":..,
//              "children":[...]},...]}
//
// Timing fields are the one sanctioned nondeterminism in the repo's
// outputs: everything else the simulator writes is a pure function of the
// seed, and the determinism suite holds that line with profiling enabled.

#include <cstdint>
#include <string>

#include "perf/profiler.h"

namespace radiomc::perf {

inline constexpr const char* kPerfSchemaVersion = "radiomc.perf/v1";

/// Identity of the run the report describes.
struct RunInfo {
  std::string tool;     ///< e.g. "radiomc_sim", "bench_micro"
  std::string command;  ///< e.g. "collect", "engine-sweep"
  unsigned jobs = 1;
  /// Engine slots executed (sum over networks); 0 when unknown.
  std::uint64_t slots = 0;
};

/// Process peak resident set in bytes (0 where unsupported).
std::uint64_t peak_rss_bytes() noexcept;

/// Heap bytes currently handed out by the allocator (glibc mallinfo2;
/// 0 where unsupported). A before/after pair brackets a run's footprint.
std::uint64_t alloc_in_use_bytes() noexcept;

/// Renders the full `radiomc.perf/v1` document (no trailing newline).
std::string to_perf_json(const Profiler& p, const RunInfo& run);

/// Writes `to_perf_json` plus a trailing newline; false on I/O failure.
bool write_perf_json_file(const Profiler& p, const RunInfo& run,
                          const std::string& path);

}  // namespace radiomc::perf
