#pragma once

// Periodic live-telemetry snapshots: a SlotHook that flushes the current
// MetricsSnapshot (plus perf deltas, when a profiler is attached) to a
// JSONL stream every N engine slots. This is the telemetry spine for the
// planned continuous-traffic `serve` mode — a long-lived run becomes
// observable *while it runs* instead of only at the end — exposed today as
// `radiomc_sim --snapshot-out FILE --snapshot-every N`.
//
// Stream layout (`radiomc.snap/v1`):
//   {"ev":"schema","v":"radiomc.snap/v1","every":N}        first line
//   {"ev":"snap","slot":t,"metrics":{...}}                 every N slots
//   {"ev":"snap","slot":t,"metrics":{...},
//    "perf":{"wall_ms":..,"interval_slots_per_sec":..}}    with profiler
//   {"ev":"end","slot":t,"snapshots":k,"clean":true}       from finish()
//
// The "end" line is the stream's footer (the same discipline as the trace
// recorder's in-band kTruncated sentinel): its presence distinguishes a
// clean shutdown from a truncated stream, and `"clean":false` plus a
// `"dropped"` count records snapshot lines that could not be written
// because the stream had gone bad mid-run. `radiomc_monitor check` treats
// a missing footer as truncation.
//
// The "metrics" member is MetricsRegistry::write_json verbatim — a pure
// function of the run seed — so a stream written without a profiler is
// deterministic end to end (the golden-file test pins it). The "perf"
// member is the sanctioned nondeterminism: wall time since the previous
// snapshot and the interval slot rate, present only when a Profiler is
// attached. Reading the clock happens here, in src/perf/ — never in the
// engine or a protocol (perf-purity).

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "radio/trace.h"
#include "support/stopwatch.h"
#include "telemetry/metrics.h"

namespace radiomc::perf {

class Profiler;

inline constexpr const char* kSnapshotSchemaVersion = "radiomc.snap/v1";

class SnapshotStreamer final : public SlotHook {
 public:
  /// Streams to `out` (borrowed; must outlive the streamer). Snapshots the
  /// registry every `every_slots` engine slots. `profiler` (optional)
  /// adds the perf-delta member to each snapshot line.
  SnapshotStreamer(std::ostream& out, std::uint64_t every_slots,
                   const telemetry::MetricsRegistry* metrics,
                   Profiler* profiler = nullptr);
  /// Opens `path` for writing and owns the stream. Check `ok()`.
  SnapshotStreamer(const std::string& path, std::uint64_t every_slots,
                   const telemetry::MetricsRegistry* metrics,
                   Profiler* profiler = nullptr);
  ~SnapshotStreamer() override;

  SnapshotStreamer(const SnapshotStreamer&) = delete;
  SnapshotStreamer& operator=(const SnapshotStreamer&) = delete;

  bool ok() const noexcept { return out_ != nullptr && out_->good(); }

  /// SlotHook: emits a snapshot line when `t` crosses the cadence.
  void on_slot_done(SlotTime t) override;

  /// Writes the trailing "end" record; idempotent (also run by the
  /// destructor). Further pulses are ignored.
  void finish();

  std::uint64_t snapshots_written() const noexcept { return snapshots_; }
  /// Snapshot lines skipped because the stream was bad at their cadence
  /// point; surfaced in the footer and counted into telemetry by the CLI.
  std::uint64_t dropped_snapshots() const noexcept { return dropped_; }

  /// The CLI flag-validation contract, shared with radiomc_sim so the
  /// error-path test and the tool reject exactly the same way: a cadence
  /// without a destination is a hard error (mirrors --trace-agg without
  /// --trace-out), a destination without a cadence is too (no silent
  /// default cadence), as is a zero cadence (a snapshot stream that never
  /// snapshots is a misconfiguration, not a quiet no-op). Throws
  /// std::invalid_argument with a specific message.
  static void validate_flags(bool has_out, bool has_every,
                             std::uint64_t every_slots);

 private:
  void write_header();

  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_;
  std::uint64_t every_;
  const telemetry::MetricsRegistry* metrics_;
  Profiler* profiler_;
  Stopwatch interval_watch_;
  SlotTime last_snap_slot_ = 0;  ///< slot of the previous snapshot line
  SlotTime seen_slot_ = 0;       ///< highest slot pulsed so far
  std::uint64_t snapshots_ = 0;
  std::uint64_t dropped_ = 0;
  bool header_written_ = false;
  bool finished_ = false;
};

}  // namespace radiomc::perf
