#include "queueing/analysis.h"

#include <cmath>

#include "support/util.h"

namespace radiomc::queueing {

double mu_decay() noexcept {
  const double e1 = std::exp(-1.0);
  return e1 * (1.0 - e1);
}

namespace {
void check_rates(double lambda, double mu) {
  require(lambda > 0.0 && lambda < mu && mu <= 1.0,
          "queueing: need 0 < lambda < mu <= 1");
}
}  // namespace

double hsu_burke_pj(double lambda, double mu, std::uint32_t j) {
  check_rates(lambda, mu);
  const double p0 = 1.0 - lambda / mu;
  if (j == 0) return p0;
  const double p1 = lambda / ((1.0 - lambda) * mu) * p0;
  if (j == 1) return p1;
  const double ratio = lambda * (1.0 - mu) / (mu * (1.0 - lambda));
  return p1 * std::pow(ratio, static_cast<double>(j - 1));
}

double mean_queue_length(double lambda, double mu) {
  check_rates(lambda, mu);
  return lambda * (1.0 - lambda) / (mu - lambda);
}

double mean_wait(double lambda, double mu) {
  check_rates(lambda, mu);
  return (1.0 - lambda) / (mu - lambda);
}

double model4_completion_phases(std::uint64_t k, std::uint32_t depth,
                                double lambda, double mu) {
  check_rates(lambda, mu);
  return static_cast<double>(k) / lambda +
         static_cast<double>(depth) * (1.0 - lambda) / (mu - lambda);
}

double thm44_slot_bound(std::uint64_t k, std::uint32_t depth,
                        std::uint32_t max_degree) {
  const double logd = std::log2(static_cast<double>(
      max_degree < 2 ? 2 : max_degree));
  return 32.27 * static_cast<double>(k + depth) * logd;
}

}  // namespace radiomc::queueing
