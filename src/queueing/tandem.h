#pragma once

// The tandem queue of Bernoulli servers (§4.3): D servers in series, the
// output of server i feeding server i-1; server 0 is the root (sink).
// Customers enter at server D. Models 2-4 of §4.2 are configurations of
// this simulator (models.h); this file provides the shared machinery.

#include <cstdint>
#include <deque>
#include <vector>

#include "support/rng.h"
#include "support/stats.h"

namespace radiomc::queueing {

class TandemQueue {
 public:
  /// `depth` servers, all with service probability mu.
  TandemQueue(std::uint32_t depth, double mu, Rng rng);

  /// Sets the initial queue contents: sizes[i] customers in server i+1's
  /// queue (i = 0 is the server next to the sink). Customer identities are
  /// anonymous; only counts matter for completion times.
  void set_initial(const std::vector<std::uint64_t>& sizes);

  /// Samples every queue from the Hsu-Burke stationary distribution for
  /// arrival rate lambda (model 4's "already in steady state").
  void set_stationary(double lambda);

  /// Advances one step: processes servers downstream-first so a customer
  /// moves at most one server per step (the models' unit-speed rule), then
  /// admits an arrival at server D with probability `arrival_p` (0 = no
  /// arrivals this step). Returns the number of departures into the sink.
  std::uint32_t step(double arrival_p);

  /// Deterministically admits one customer at server D (used by the
  /// finite-k arrival processes of models 3 and 4).
  void admit();

  /// Enables per-customer sojourn-time tracking (FIFO entry stamps per
  /// server). Little's law check: the mean sojourn at each stage must be
  /// N/lambda = (1-lambda)/(mu-lambda) steps.
  void enable_sojourn();
  /// Per-stage sojourn statistics (valid after enable_sojourn()).
  const OnlineStats& sojourn(std::uint32_t server) const {
    return sojourn_[server];
  }

  std::uint64_t queue(std::uint32_t server) const { return queues_[server]; }
  std::uint64_t total_in_system() const noexcept;
  std::uint64_t sink_count() const noexcept { return sink_; }
  std::uint32_t depth() const noexcept {
    return static_cast<std::uint32_t>(queues_.size());
  }

 private:
  double mu_;
  Rng rng_;
  std::vector<std::uint64_t> queues_;  // index 0 = adjacent to sink
  std::uint64_t sink_ = 0;
  std::uint64_t steps_ = 0;

  // Sojourn tracking (optional): entry step of each waiting customer, FIFO
  // per server, kept in lockstep with queues_.
  bool track_sojourn_ = false;
  std::vector<std::deque<std::uint64_t>> entries_;
  std::vector<OnlineStats> sojourn_;
};

/// Samples a queue length from the Hsu-Burke stationary distribution.
std::uint64_t sample_stationary_queue(double lambda, double mu, Rng& rng);

}  // namespace radiomc::queueing
