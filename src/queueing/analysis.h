#pragma once

// Closed-form results used by the paper's performance analysis (§4.2-4.3).
//
//  * mu_decay(): Theorem 4.1's per-phase level-advance probability
//    mu = e^-1 (1 - e^-1).
//  * Hsu-Burke [12] stationary distribution of a Bernoulli server with
//    Bernoulli(lambda) input, lambda < mu:
//      p_0 = 1 - lambda/mu,
//      p_1 = lambda / ((1-lambda) mu) * p_0,
//      p_j = (lambda(1-mu) / (mu(1-lambda)))^(j-1) * p_1,
//    mean queue length N = lambda(1-lambda)/(mu-lambda), and by Little's
//    law the mean time in queue E(T) = N/lambda = (1-lambda)/(mu-lambda).
//  * Theorem 4.3: expected completion time of model 4 is
//      k/lambda + D (1-lambda)/(mu-lambda)   phases.
//  * Theorem 4.4: expected slots for k messages to reach the root is at
//    most 32.27 (k + D) log2(Delta).

#include <cstdint>

namespace radiomc::queueing {

/// mu = e^-1 (1 - e^-1) ~ 0.23254.
double mu_decay() noexcept;

/// Stationary probability that the queue holds exactly j customers.
/// Requires 0 < lambda < mu <= 1.
double hsu_burke_pj(double lambda, double mu, std::uint32_t j);

/// Stationary mean queue length lambda(1-lambda)/(mu-lambda).
double mean_queue_length(double lambda, double mu);

/// Mean time in one queue (Little): (1-lambda)/(mu-lambda) steps.
double mean_wait(double lambda, double mu);

/// Theorem 4.3: expected completion time of model 4, in phases.
double model4_completion_phases(std::uint64_t k, std::uint32_t depth,
                                double lambda, double mu);

/// Theorem 4.4's slot bound: 32.27 (k + D) log2(Delta).
double thm44_slot_bound(std::uint64_t k, std::uint32_t depth,
                        std::uint32_t max_degree);

}  // namespace radiomc::queueing
