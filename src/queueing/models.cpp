#include "queueing/models.h"

#include "protocols/collection.h"
#include "queueing/tandem.h"
#include "support/rng_tags.h"
#include "support/util.h"

namespace radiomc::queueing {

std::uint64_t run_model1_phases(const Graph& g, const BfsTree& tree,
                                const std::vector<NodeId>& sources,
                                std::uint64_t seed) {
  std::vector<Message> init;
  init.reserve(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    Message m;
    m.kind = MsgKind::kData;
    m.origin = sources[i];
    m.seq = static_cast<std::uint32_t>(i);
    init.push_back(m);
  }
  const CollectionOutcome out = run_collection(
      g, tree, std::move(init), CollectionConfig::for_graph(g), seed);
  require(out.completed, "run_model1_phases: collection did not complete");
  return out.phases;
}

std::uint64_t run_model2(const std::vector<std::uint32_t>& levels,
                         std::uint32_t depth, double mu, Rng& rng) {
  std::vector<std::uint64_t> sizes(depth, 0);
  for (std::uint32_t l : levels) {
    require(l >= 1 && l <= depth, "run_model2: level out of range");
    ++sizes[l - 1];  // queue index 0 is level 1 (adjacent to the root)
  }
  TandemQueue q(depth, mu, rng.split(rng_tags::kModel2Tandem));
  q.set_initial(sizes);
  std::uint64_t steps = 0;
  while (q.total_in_system() > 0) {
    q.step(0.0);
    ++steps;
  }
  return steps;
}

namespace {

std::uint64_t drain_k_arrivals(TandemQueue& q, std::uint64_t k, double lambda,
                               std::uint64_t already_in_system, Rng& rng) {
  std::uint64_t arrived = 0;
  std::uint64_t steps = 0;
  const std::uint64_t target = already_in_system + k;
  while (q.sink_count() < target) {
    q.step(0.0);
    if (arrived < k && rng.bernoulli(lambda)) {
      q.admit();
      ++arrived;
    }
    ++steps;
  }
  return steps;
}

}  // namespace

std::uint64_t run_model3(std::uint64_t k, std::uint32_t depth, double mu,
                         double lambda, Rng& rng) {
  TandemQueue q(depth, mu, rng.split(rng_tags::kModel3Tandem));
  return drain_k_arrivals(q, k, lambda, 0, rng);
}

std::uint64_t run_model4(std::uint64_t k, std::uint32_t depth, double mu,
                         double lambda, Rng& rng) {
  TandemQueue q(depth, mu, rng.split(rng_tags::kModel4Tandem));
  q.set_stationary(lambda);
  return drain_k_arrivals(q, k, lambda, q.total_in_system(), rng);
}

}  // namespace radiomc::queueing
