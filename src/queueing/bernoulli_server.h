#pragma once

// A single discrete-time Bernoulli server (§4.3): per step, if the queue is
// nonempty, exactly one customer is served with probability mu; a new
// customer arrives with probability lambda. Used to verify the Hsu-Burke
// stationary distribution and the Bernoulli-departure theorem (Thm 4.2).

#include <cstdint>

#include "support/rng.h"
#include "support/stats.h"

namespace radiomc::queueing {

class BernoulliServer {
 public:
  BernoulliServer(double lambda, double mu, Rng rng);

  /// Advances one step; returns true iff a departure occurred. Service
  /// happens before the arrival within a step (a customer cannot be served
  /// in its own arrival slot) — the convention of the Hsu-Burke law and of
  /// the tandem composition.
  bool step();

  std::uint64_t queue_length() const noexcept { return queue_; }

  /// Simulates `steps` after a `warmup`, recording the queue length each
  /// step and whether a departure occurred.
  struct StationaryStats {
    Histogram queue_lengths;
    std::uint64_t departures = 0;
    std::uint64_t steps = 0;
    /// Lag-1 autocorrelation proxy of the departure process: count of
    /// consecutive-step departure pairs, for the Bernoulli-ness check.
    std::uint64_t consecutive_departures = 0;
  };
  StationaryStats run(std::uint64_t warmup, std::uint64_t steps);

 private:
  double lambda_;
  double mu_;
  Rng rng_;
  std::uint64_t queue_ = 0;
};

}  // namespace radiomc::queueing
