#include "queueing/bernoulli_server.h"

#include "support/util.h"

namespace radiomc::queueing {

BernoulliServer::BernoulliServer(double lambda, double mu, Rng rng)
    : lambda_(lambda), mu_(mu), rng_(rng) {
  require(lambda > 0.0 && lambda < mu && mu <= 1.0,
          "BernoulliServer: need 0 < lambda < mu <= 1");
}

bool BernoulliServer::step() {
  // Service first, then arrival (a customer cannot be served in its
  // arrival slot) — the convention under which the Hsu-Burke stationary
  // law p_0 = 1 - lambda/mu, p_1 = lambda p_0 / ((1-lambda) mu), ... holds.
  bool departed = false;
  if (queue_ > 0 && rng_.bernoulli(mu_)) {
    --queue_;
    departed = true;
  }
  if (rng_.bernoulli(lambda_)) ++queue_;
  return departed;
}

BernoulliServer::StationaryStats BernoulliServer::run(std::uint64_t warmup,
                                                      std::uint64_t steps) {
  for (std::uint64_t i = 0; i < warmup; ++i) step();
  StationaryStats s;
  s.steps = steps;
  bool prev = false;
  for (std::uint64_t i = 0; i < steps; ++i) {
    s.queue_lengths.add(static_cast<std::int64_t>(queue_));
    const bool dep = step();
    if (dep) {
      ++s.departures;
      if (prev) ++s.consecutive_departures;
    }
    prev = dep;
  }
  return s;
}

}  // namespace radiomc::queueing
