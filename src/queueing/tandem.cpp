#include "queueing/tandem.h"

#include <numeric>

#include "queueing/analysis.h"
#include "support/util.h"

namespace radiomc::queueing {

TandemQueue::TandemQueue(std::uint32_t depth, double mu, Rng rng)
    : mu_(mu), rng_(rng), queues_(depth, 0) {
  require(depth >= 1, "TandemQueue: depth >= 1");
  require(mu > 0.0 && mu <= 1.0, "TandemQueue: mu in (0, 1]");
}

void TandemQueue::set_initial(const std::vector<std::uint64_t>& sizes) {
  require(sizes.size() == queues_.size(), "TandemQueue: size mismatch");
  queues_ = sizes;
  sink_ = 0;
  if (track_sojourn_)
    for (std::size_t i = 0; i < queues_.size(); ++i)
      entries_[i].assign(queues_[i], steps_);
}

void TandemQueue::set_stationary(double lambda) {
  for (auto& q : queues_) q = sample_stationary_queue(lambda, mu_, rng_);
  sink_ = 0;
  if (track_sojourn_)
    for (std::size_t i = 0; i < queues_.size(); ++i)
      entries_[i].assign(queues_[i], steps_);
}

void TandemQueue::admit() {
  ++queues_.back();
  if (track_sojourn_) entries_.back().push_back(steps_);
}

void TandemQueue::enable_sojourn() {
  require(total_in_system() == 0,
          "TandemQueue::enable_sojourn: enable before populating");
  track_sojourn_ = true;
  entries_.assign(queues_.size(), {});
  sojourn_.assign(queues_.size(), OnlineStats{});
}

std::uint32_t TandemQueue::step(double arrival_p) {
  std::uint32_t departed = 0;
  // Downstream-first: server 0's decision happens before it can see the
  // customer server 1 pushes this step, so customers move one hop per step.
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    if (queues_[i] == 0 || !rng_.bernoulli(mu_)) continue;
    --queues_[i];
    if (track_sojourn_) {
      // The sojourn counted by Little's law: slot starts at which the
      // customer was present = departure step - arrival step.
      sojourn_[i].add(static_cast<double>(steps_ - entries_[i].front()));
      entries_[i].pop_front();
      if (i > 0) entries_[i - 1].push_back(steps_);
    }
    if (i == 0) {
      ++sink_;
      ++departed;
    } else {
      ++queues_[i - 1];
    }
  }
  if (arrival_p > 0.0 && rng_.bernoulli(arrival_p)) {
    ++queues_.back();
    if (track_sojourn_) entries_.back().push_back(steps_);
  }
  ++steps_;
  return departed;
}

std::uint64_t TandemQueue::total_in_system() const noexcept {
  return std::accumulate(queues_.begin(), queues_.end(), std::uint64_t{0});
}

std::uint64_t sample_stationary_queue(double lambda, double mu, Rng& rng) {
  // Inverse-CDF sampling over the Hsu-Burke distribution: p_0, then a
  // geometric tail with ratio r = lambda(1-mu) / (mu(1-lambda)).
  const double u = rng.next_double();
  double cdf = hsu_burke_pj(lambda, mu, 0);
  if (u < cdf) return 0;
  const double r = lambda * (1.0 - mu) / (mu * (1.0 - lambda));
  double pj = hsu_burke_pj(lambda, mu, 1);
  std::uint64_t j = 1;
  while (u >= cdf + pj && j < 1'000'000) {
    cdf += pj;
    pj *= r;
    ++j;
  }
  return j;
}

}  // namespace radiomc::queueing
