#pragma once

// The move-vector / partition algebra of §4.4, used by the paper to prove
// the domination chain between models (Lemmas 4.5-4.15). Implemented as a
// small value-type library so the lemmas become executable property tests.
//
// A Partition a = (a_1, ..., a_{D+1}) counts messages per level (a_{D+1}
// is the arrival reservoir). Move(a, m) moves delta_i = min(a_i, m_i)
// messages from level i to level i-1 (level 1 moves into the root/sink,
// which is not tracked). The paper treats the reservoir component
// unconditionally (delta_{D+1} = m_{D+1}); we clamp it with min() as well
// so partitions stay nonnegative — this matches model 3's finite-k
// semantics and none of the lemmas depend on the difference.

#include <cstdint>
#include <span>
#include <vector>

#include "support/rng.h"

namespace radiomc::queueing {

using Partition = std::vector<std::uint64_t>;
using MoveVector = std::vector<std::uint64_t>;

/// Move(a, m) per §4.4.
Partition move(const Partition& a, const MoveVector& m);

/// Move*(a, M, t): t successive moves.
Partition move_star(Partition a, std::span<const MoveVector> ms,
                    std::size_t t);

/// A singleton move vector e_i (1-based component i set to 1).
MoveVector singleton(std::size_t size, std::size_t i);

/// Lemma 4.5's decomposition: a singleton sequence E_m with
/// Move(a, m) == Move*(a, E_m, |E_m|) for every a. The construction emits,
/// for each t, the first nonzero component of m minus what has already
/// been emitted — i.e. lexicographically nonincreasing singletons.
std::vector<MoveVector> singleton_decomposition(const MoveVector& m);

/// m dominates m' iff m_i >= m'_i for all i (§4.4).
bool dominates(const MoveVector& m, const MoveVector& weaker);

/// True iff every component of a is zero (completion).
bool is_drained(const Partition& a);

/// Completion time T(a, M): number of moves until drained; returns
/// max_steps+1 if M (cycled) does not drain a within max_steps.
std::uint64_t completion_time(Partition a, std::span<const MoveVector> ms,
                              std::uint64_t max_steps);

/// Random move sequence of the tandem-queue kind: P(m_i = 1) = mu for the
/// servers and P(m_{D+1} = 1) = lambda for the reservoir.
std::vector<MoveVector> random_move_sequence(std::size_t size, double mu,
                                             double lambda, std::size_t len,
                                             Rng& rng);

}  // namespace radiomc::queueing
