#include "queueing/partition.h"

#include <algorithm>

#include "support/util.h"

namespace radiomc::queueing {

Partition move(const Partition& a, const MoveVector& m) {
  require(a.size() == m.size(), "move: size mismatch");
  const std::size_t d = a.size();
  Partition out = a;
  // delta_i leaves level i; it arrives at level i-1 (or the untracked sink
  // for i = 1). Computed from the *pre-move* contents, as in the paper.
  std::vector<std::uint64_t> delta(d);
  for (std::size_t i = 0; i < d; ++i) delta[i] = std::min(a[i], m[i]);
  for (std::size_t i = 0; i < d; ++i) {
    out[i] -= delta[i];
    if (i > 0) out[i - 1] += delta[i];
  }
  return out;
}

Partition move_star(Partition a, std::span<const MoveVector> ms,
                    std::size_t t) {
  require(t <= ms.size(), "move_star: not enough moves");
  for (std::size_t i = 0; i < t; ++i) a = move(a, ms[i]);
  return a;
}

MoveVector singleton(std::size_t size, std::size_t i) {
  require(i >= 1 && i <= size, "singleton: index out of range (1-based)");
  MoveVector m(size, 0);
  m[i - 1] = 1;
  return m;
}

std::vector<MoveVector> singleton_decomposition(const MoveVector& m) {
  // Emit each component's units starting from the lowest index; within the
  // proof of Lemma 4.5 the exact order is fixed by "the first nonzero
  // component of m - sum(previous singletons)", i.e. component 1's units
  // first, then component 2's, and so on.
  std::vector<MoveVector> out;
  for (std::size_t i = 0; i < m.size(); ++i)
    for (std::uint64_t c = 0; c < m[i]; ++c)
      out.push_back(singleton(m.size(), i + 1));
  return out;
}

bool dominates(const MoveVector& m, const MoveVector& weaker) {
  require(m.size() == weaker.size(), "dominates: size mismatch");
  for (std::size_t i = 0; i < m.size(); ++i)
    if (m[i] < weaker[i]) return false;
  return true;
}

bool is_drained(const Partition& a) {
  return std::all_of(a.begin(), a.end(),
                     [](std::uint64_t x) { return x == 0; });
}

std::uint64_t completion_time(Partition a, std::span<const MoveVector> ms,
                              std::uint64_t max_steps) {
  require(!ms.empty(), "completion_time: empty move sequence");
  for (std::uint64_t t = 0; t < max_steps; ++t) {
    if (is_drained(a)) return t;
    a = move(a, ms[t % ms.size()]);
  }
  return is_drained(a) ? max_steps : max_steps + 1;
}

std::vector<MoveVector> random_move_sequence(std::size_t size, double mu,
                                             double lambda, std::size_t len,
                                             Rng& rng) {
  std::vector<MoveVector> out;
  out.reserve(len);
  for (std::size_t t = 0; t < len; ++t) {
    MoveVector m(size, 0);
    for (std::size_t i = 0; i + 1 < size; ++i) m[i] = rng.bernoulli(mu);
    m[size - 1] = rng.bernoulli(lambda);
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace radiomc::queueing
