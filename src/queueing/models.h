#pragma once

// The four models of §4.2, as measurable simulations.
//
//  model 1  the radio network itself: k messages on the nodes of the BFS
//           tree, moved by the collection protocol; completion counted in
//           phases.
//  model 2  a path of D+1 nodes; all level-i messages sit at path node i;
//           per step at most one message moves i -> i-1, with probability
//           exactly mu.
//  model 3  like model 2 but initially empty: the k messages arrive at
//           node D as a Bernoulli(lambda) process.
//  model 4  like model 3 but the queues start in Hsu-Burke steady state;
//           completion is when the k-th *additional* message reaches the
//           root.
//
// Theorem 4.15's chain E[T1] <= E[T2] <= E[T3] <= E[T4] is experiment E8.

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "protocols/tree.h"
#include "support/rng.h"

namespace radiomc::queueing {

/// Model 1: phases for the collection protocol to deliver all messages
/// from `sources` (one message each) to the root.
std::uint64_t run_model1_phases(const Graph& g, const BfsTree& tree,
                                const std::vector<NodeId>& sources,
                                std::uint64_t seed);

/// Model 2: steps to drain messages initially at `levels` (each in
/// [1, depth]) through a depth-server tandem with service probability mu.
std::uint64_t run_model2(const std::vector<std::uint32_t>& levels,
                         std::uint32_t depth, double mu, Rng& rng);

/// Model 3: steps until k Bernoulli(lambda) arrivals have all reached the
/// root of an initially empty depth-server tandem.
std::uint64_t run_model3(std::uint64_t k, std::uint32_t depth, double mu,
                         double lambda, Rng& rng);

/// Model 4: like model 3 but queues start in steady state; counts steps
/// until the k-th additional arrival reaches the root.
std::uint64_t run_model4(std::uint64_t k, std::uint32_t depth, double mu,
                         double lambda, Rng& rng);

}  // namespace radiomc::queueing
