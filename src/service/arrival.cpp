#include "service/arrival.h"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace radiomc::service {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::invalid_argument(msg);
}

void require_spec(bool ok, const std::string& msg) {
  if (!ok) fail(msg);
}

/// Batch sizes beyond this are astronomically unlikely at the per-phase
/// rates the protocol can absorb (P[X > 64] < 1e-50 for mean <= 8); the cap
/// keeps the inverse-CDF walk bounded without biasing any realistic draw.
constexpr std::uint32_t kPoissonCap = 64;

}  // namespace

const char* to_string(ArrivalKind k) noexcept {
  switch (k) {
    case ArrivalKind::kBernoulli: return "bernoulli";
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kMmpp: return "mmpp";
  }
  return "?";
}

void ArrivalSpec::validate() const {
  switch (kind) {
    case ArrivalKind::kBernoulli:
      require_spec(rate > 0.0 && rate < 1.0,
                   "arrival spec: bernoulli rate must be in (0, 1) — it is "
                   "a per-phase arrival probability");
      break;
    case ArrivalKind::kPoisson:
      require_spec(rate > 0.0, "arrival spec: poisson rate must be > 0");
      require_spec(rate <= 8.0,
                   "arrival spec: poisson rate must be <= 8 — the network "
                   "advances at most one message per level per phase (mu < "
                   "0.24), so a larger offered load is pure overload");
      break;
    case ArrivalKind::kMmpp:
      require_spec(rate >= 0.0 && rate <= 8.0,
                   "arrival spec: mmpp off-state rate must be in [0, 8]");
      require_spec(on_rate > 0.0 && on_rate <= 8.0,
                   "arrival spec: mmpp on-state rate must be in (0, 8]");
      require_spec(on_rate >= rate,
                   "arrival spec: mmpp on-state rate must be >= the "
                   "off-state rate (the on state is the burst)");
      require_spec(p_on > 0.0 && p_on <= 1.0,
                   "arrival spec: mmpp p_on (off->on switch probability) "
                   "must be in (0, 1]");
      require_spec(p_off > 0.0 && p_off <= 1.0,
                   "arrival spec: mmpp p_off (on->off switch probability) "
                   "must be in (0, 1]");
      break;
  }
}

double ArrivalSpec::mean_rate() const noexcept {
  switch (kind) {
    case ArrivalKind::kBernoulli:
    case ArrivalKind::kPoisson:
      return rate;
    case ArrivalKind::kMmpp: {
      // Stationary distribution of the two-state chain: pi_on =
      // p_on / (p_on + p_off).
      const double pi_on = p_on / (p_on + p_off);
      return pi_on * on_rate + (1.0 - pi_on) * rate;
    }
  }
  return rate;
}

ArrivalSpec ArrivalSpec::parse(const std::string& text) {
  std::vector<std::string> parts;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ':')) parts.push_back(item);
  require_spec(!parts.empty(),
               "arrival spec: empty — expected KIND:RATE[:...], e.g. "
               "bernoulli:0.5");
  const auto num = [&](std::size_t i, const char* what) {
    std::size_t used = 0;
    double v = 0.0;
    try {
      v = std::stod(parts.at(i), &used);
    } catch (const std::invalid_argument&) {
      fail(std::string("arrival spec: ") + what + " '" +
           (i < parts.size() ? parts[i] : "") + "' is not a number");
    }
    // Outside the try: this throw must not be mistaken for stod's.
    require_spec(used == parts[i].size(),
                 std::string("arrival spec: trailing junk in ") + what +
                     " '" + parts[i] + "'");
    return v;
  };
  ArrivalSpec s;
  if (parts[0] == "bernoulli" || parts[0] == "poisson") {
    s.kind = parts[0] == "bernoulli" ? ArrivalKind::kBernoulli
                                     : ArrivalKind::kPoisson;
    require_spec(parts.size() == 2,
                 "arrival spec: " + parts[0] +
                     " takes exactly one parameter (" + parts[0] +
                     ":RATE, mean arrivals per phase)");
    s.rate = num(1, "rate");
  } else if (parts[0] == "mmpp") {
    s.kind = ArrivalKind::kMmpp;
    require_spec(parts.size() == 5,
                 "arrival spec: mmpp takes exactly four parameters "
                 "(mmpp:OFF_RATE:ON_RATE:P_ON:P_OFF)");
    s.rate = num(1, "off-state rate");
    s.on_rate = num(2, "on-state rate");
    s.p_on = num(3, "p_on");
    s.p_off = num(4, "p_off");
  } else {
    fail("arrival spec: unknown kind '" + parts[0] +
         "' — expected bernoulli, poisson or mmpp");
  }
  s.validate();
  return s;
}

std::string ArrivalSpec::describe() const {
  char buf[128];
  switch (kind) {
    case ArrivalKind::kBernoulli:
      std::snprintf(buf, sizeof buf, "bernoulli(%.4g)", rate);
      break;
    case ArrivalKind::kPoisson:
      std::snprintf(buf, sizeof buf, "poisson(%.4g)", rate);
      break;
    case ArrivalKind::kMmpp:
      std::snprintf(buf, sizeof buf,
                    "mmpp(off=%.4g on=%.4g p_on=%.4g p_off=%.4g mean=%.4g)",
                    rate, on_rate, p_on, p_off, mean_rate());
      break;
  }
  return buf;
}

ArrivalProcess::ArrivalProcess(const ArrivalSpec& spec, Rng rng)
    : spec_(spec), rng_(rng) {
  spec_.validate();
}

std::uint32_t ArrivalProcess::draw_poisson(double mean) {
  // Inverse-CDF walk on one uniform: k is the smallest value with
  // CDF(k) >= u. One draw per phase, deterministic in the stream.
  const double u = rng_.next_double();
  double p = std::exp(-mean);
  double cdf = p;
  std::uint32_t k = 0;
  while (u > cdf && k < kPoissonCap) {
    ++k;
    p *= mean / k;
    cdf += p;
  }
  return k;
}

std::uint32_t ArrivalProcess::step() {
  switch (spec_.kind) {
    case ArrivalKind::kBernoulli:
      return rng_.bernoulli(spec_.rate) ? 1 : 0;
    case ArrivalKind::kPoisson:
      return draw_poisson(spec_.rate);
    case ArrivalKind::kMmpp: {
      // Step the modulating chain, then draw the batch from the new state
      // — a burst begins in the phase the chain switches on.
      const double switch_p = on_ ? spec_.p_off : spec_.p_on;
      if (rng_.bernoulli(switch_p)) on_ = !on_;
      const double mean = on_ ? spec_.on_rate : spec_.rate;
      return mean > 0.0 ? draw_poisson(mean) : 0;
    }
  }
  return 0;
}

}  // namespace radiomc::service
