#pragma once

// Soak certification: turn a finished run_service measurement into a
// machine-checkable verdict against the paper's closed forms.
//
// A soak passes iff all four checks hold:
//
//  * throughput — delivered rate over the measured window is at least
//    (1 - margin) x the offered load lambda. An overloaded run
//    (lambda > mu) cannot pass: the network drains at most mu per phase
//    (Theorem 4.1), so the delivered rate saturates below the floor.
//  * sojourn — mean arrival-to-root latency is within a configurable
//    multiple of the Theorem 4.15 tandem-queue closed form
//    D x (1 - lambda)/(mu - lambda) phases. Undefined (and failed) when
//    lambda >= mu, where no stationary sojourn exists.
//  * exactly-once — zero duplicate root deliveries across the whole run,
//    warmup included.
//  * bounded queues — no BFS level's start-of-phase depth ever exceeded
//    twice the admission controller's Hsu-Burke envelope.
//
// A soak that ran with an online health monitor attached adds a fifth
// check: zero alert-rule trips over the run (health/rules.h).
//
// The verdict serializes as `radiomc.soak/v1` (schema documented in
// docs/OBSERVABILITY.md), the soak-mode sibling of the live
// radiomc.snap/v1 stream.

#include <cstdint>
#include <string>

#include "service/service.h"

namespace radiomc::service {

struct CertifyConfig {
  /// Throughput slack: the floor is (1 - margin) x offered lambda.
  double throughput_margin = 0.10;
  /// Sojourn ceiling as a multiple of the Thm 4.15 closed form.
  double sojourn_multiple = 3.0;

  /// Throws std::invalid_argument when margin is outside (0, 1) or the
  /// sojourn multiple is not positive.
  void validate() const;
};

/// Alert totals from an online health monitor (src/health/), folded into
/// the verdict when the soak ran with one attached.
struct HealthSummary {
  std::uint64_t windows = 0;
  std::uint64_t trips = 0;
  std::uint64_t clears = 0;
  /// Rules still tripped when the run ended.
  std::uint64_t active = 0;
};

struct SoakVerdict {
  bool pass = false;
  bool throughput_ok = false;
  bool sojourn_ok = false;
  bool exactly_once_ok = false;
  bool queues_bounded = false;
  /// True when the run carried a health monitor; `health_ok` (zero alert
  /// trips) then becomes a fifth pass condition and a "health" section
  /// joins the JSON document. Without a monitor both stay out of the
  /// verdict entirely, keeping pre-health documents byte-identical.
  bool health_checked = false;
  bool health_ok = false;
  HealthSummary health;
  /// Echo of the run status — informational, not part of `pass` (a
  /// fault-churn soak is expected to degrade yet may still certify).
  bool degraded = false;

  // Inputs, echoed for a self-describing document.
  double offered_rate = 0.0;
  double mu = 0.0;
  std::uint32_t depth = 0;
  std::uint64_t phases = 0;
  std::uint64_t slots = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  std::uint64_t deferred = 0;
  std::uint64_t shed = 0;
  std::uint64_t delivered = 0;
  std::uint64_t duplicates = 0;

  // Per-check measurement vs bound.
  double delivered_rate = 0.0;
  double throughput_floor = 0.0;
  double sojourn_mean = 0.0;
  /// NaN (serialized as null) when lambda >= mu.
  double sojourn_bound = 0.0;
  std::uint64_t peak_level_depth = 0;
  double queue_bound = 0.0;

  /// {"schema":"radiomc.soak/v1",...}; see docs/OBSERVABILITY.md.
  std::string to_json() const;
  /// Writes `to_json()` plus a trailing newline; returns false on I/O
  /// failure.
  bool write_json_file(const std::string& path) const;
};

/// Judges a finished measurement. `offered_rate` is the arrival process'
/// stationary mean (ArrivalSpec::mean_rate), `mu` the Theorem 4.1 advance
/// rate, `depth` the BFS tree depth D of the Thm 4.15 tandem. `health`
/// (optional) folds an online monitor's alert totals into the verdict:
/// certification then also requires zero rule trips.
SoakVerdict certify_soak(const ServeOutcome& out, double offered_rate,
                         double mu, std::uint32_t depth,
                         const CertifyConfig& cfg,
                         const HealthSummary* health = nullptr);

}  // namespace radiomc::service
