#pragma once

// The continuous-traffic service driver: §4 collection run as a long-lived
// open-loop server instead of a closed batch.
//
// Each phase the configured ArrivalProcess produces a batch of new
// messages; the AdmissionController compares the target BFS level's
// start-of-phase queue depth against the Hsu–Burke envelope and admits,
// defers, or sheds each one; admitted messages are injected at their
// origin stations and climb the tree under the unmodified §4 collection
// protocol. The driver keeps the telemetry registry current *every phase*
// (arrival/admission/delivery counters, in-system and ingress-backlog
// gauges, per-level queue-depth distributions), so a SnapshotStreamer
// installed as the slot hook turns a soak into a live radiomc.snap/v1
// stream — the PR 6 spine this mode was built for.
//
// Everything is a pure function of (graph, tree, config, seed): arrivals
// come from a dedicated split stream, station randomness from per-node
// splits, and the fault stream is derived only when a plan is active — the
// same byte-identical discipline as every bounded driver in this tree.
//
// Certification of a finished run (throughput / sojourn / exactly-once
// verdicts against the Theorem 4.15 closed forms) lives in
// service/certify.h.

#include <cstdint>
#include <string>

#include "faults/fault_plan.h"
#include "graph/graph.h"
#include "protocols/steady_state.h"
#include "protocols/tree.h"
#include "radio/trace.h"
#include "service/admission.h"
#include "service/arrival.h"
#include "support/stats.h"
#include "telemetry/telemetry.h"

namespace radiomc {
namespace perf {
class Profiler;  // src/perf/profiler.h; forward-declared so no service
                 // header includes the measurement layer (perf-purity)
}  // namespace perf
namespace health {
class Monitor;  // src/health/monitor.h; forward-declared for the same
                // reason — observers are wired, never read back
}  // namespace health
}  // namespace radiomc

namespace radiomc::service {

struct ServeConfig {
  ArrivalSpec arrival;
  AdmissionConfig admission;

  /// Measured horizon in phases (after warmup); must be > 0.
  std::uint64_t phases = 20'000;
  /// Phases discarded before population/sojourn statistics start.
  std::uint64_t warmup_phases = 2'000;
  ArrivalPlacement placement = ArrivalPlacement::kDeepestLevel;

  /// Remark 3 duplicate guard on every station: under fault plans an ack
  /// can be lost and a child retransmits a message its parent already
  /// accepted; the guard keeps root delivery exactly-once, which the soak
  /// certification asserts. On by default — a service owes its clients
  /// exactly-once, not the paper's cleanest model.
  bool dedup_guard = true;
  /// Collection stations opt into the active-set engine's autosleep
  /// (radio/waker.h): idle stations cost no polls on long soaks. Output is
  /// byte-identical either way (the Waker contract, proven by the engine
  /// diff harness); off only for A/B measurements.
  bool autosleep = true;

  FaultPlan faults;

  /// Optional observability; the driver never reads any of it.
  telemetry::Telemetry* telemetry = nullptr;
  perf::Profiler* profiler = nullptr;
  SlotHook* slot_hook = nullptr;
  /// Online health monitor (src/health/): when set, the driver installs
  /// its flight recorder as the network's trace sink and feeds it one
  /// PhaseSample per completed phase. When null, no sink is installed and
  /// the run is byte-identical to a health-free build.
  health::Monitor* health = nullptr;

  /// Throws std::invalid_argument on a contradictory config (zero measured
  /// horizon, bad arrival spec or admission config).
  void validate() const;
};

struct ServeOutcome {
  std::uint64_t phases = 0;  ///< measured phases (excludes warmup)
  std::uint64_t slots = 0;   ///< total engine slots including warmup

  // Arrival/admission counters over the measured horizon.
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  std::uint64_t deferred = 0;  ///< defer events (one per held phase)
  std::uint64_t shed = 0;
  std::uint64_t delivered = 0;
  /// Root deliveries carrying an (origin, seq) already delivered (or never
  /// injected): exactly-once violations. Zero with the dedup guard on.
  std::uint64_t duplicates = 0;

  /// In-network population sampled at measured phase starts.
  OnlineStats population;
  /// Per delivered message: phases from arrival (not admission) to root.
  OnlineStats sojourn_phases;

  /// Deepest start-of-phase queue depth any single BFS level reached.
  std::uint64_t peak_level_depth = 0;
  /// The admission controller's per-level envelope, for reports.
  double level_envelope = 0.0;
  /// Messages still in the network (admitted, undelivered) at the end.
  std::uint64_t backlog = 0;
  /// Arrivals still held by the defer policy at the end.
  std::uint64_t defer_backlog = 0;

  /// Engine on_slot invocations — the autosleep payoff metric.
  std::uint64_t engine_polls = 0;

  /// kOk, or kDegraded when the run shed/deferred traffic, delivered a
  /// duplicate, or saw a level exceed twice the admission envelope.
  RunStatus status = RunStatus::kOk;
};

/// Runs the service for warmup + phases collection phases and reports the
/// measured open-system behavior. `tree` must be a BFS tree of `g`.
ServeOutcome run_service(const Graph& g, const BfsTree& tree,
                         const ServeConfig& cfg, std::uint64_t seed);

/// The `radiomc_sim serve` flag-pairing contract, shared with the CLI so
/// the error-path tests and the tool reject identically (the --trace-agg
/// convention: a flag whose meaning depends on an absent partner is a hard
/// error, never a silent no-op). Throws std::invalid_argument with a
/// specific message. `has_horizon` = --slots or --phases given;
/// `both_horizons` = both given at once.
void validate_serve_flags(bool has_certify, bool has_horizon,
                          bool both_horizons, bool has_soak_out,
                          bool has_margin, bool has_sojourn_multiple,
                          bool has_envelope, bool has_admission);

}  // namespace radiomc::service
