#include "service/admission.h"

#include <algorithm>
#include <stdexcept>

#include "queueing/analysis.h"

namespace radiomc::service {

const char* to_string(AdmissionPolicy p) noexcept {
  switch (p) {
    case AdmissionPolicy::kOff: return "off";
    case AdmissionPolicy::kShed: return "shed";
    case AdmissionPolicy::kDefer: return "defer";
  }
  return "?";
}

AdmissionPolicy admission_policy_from_string(const std::string& s) {
  if (s == "off") return AdmissionPolicy::kOff;
  if (s == "shed") return AdmissionPolicy::kShed;
  if (s == "defer") return AdmissionPolicy::kDefer;
  throw std::invalid_argument("--admission '" + s +
                              "' is not a policy: expected off, shed or "
                              "defer");
}

void AdmissionConfig::validate() const {
  if (!(envelope_multiple > 0.0))
    throw std::invalid_argument(
        "admission config: envelope multiple must be > 0 (it scales the "
        "Hsu-Burke per-level queue envelope)");
}

AdmissionController::AdmissionController(const AdmissionConfig& cfg,
                                         double lambda, double mu)
    : cfg_(cfg) {
  cfg_.validate();
  // Evaluate the Hsu-Burke mean at lambda_eff = min(lambda, 0.9 mu): the
  // closed form diverges at lambda -> mu, and in overload any finite
  // envelope is the right answer (shedding is the point).
  const double lambda_eff = std::min(lambda, 0.9 * mu);
  const double mean = queueing::mean_queue_length(lambda_eff, mu);
  envelope_ = cfg_.envelope_multiple * std::max(1.0, mean);
}

AdmissionController::Decision AdmissionController::decide(
    std::uint64_t level_depth) noexcept {
  if (cfg_.policy != AdmissionPolicy::kOff &&
      static_cast<double>(level_depth) >= envelope_) {
    if (cfg_.policy == AdmissionPolicy::kShed) {
      ++shed_;
      return Decision::kShed;
    }
    ++deferred_;
    return Decision::kDefer;
  }
  ++admitted_;
  return Decision::kAdmit;
}

}  // namespace radiomc::service
