#pragma once

// Admission control for the continuous-traffic service mode: compare
// per-level queue depths against the Hsu–Burke steady-state envelope and
// shed (drop) or defer (hold and retry) arrivals that would push a level
// past a configurable multiple of it.
//
// The envelope comes from §4.3: a stable level behaves like a Bernoulli
// server with Bernoulli(lambda) input and stationary mean queue length
// N = lambda(1-lambda)/(mu-lambda) (queueing/analysis.h). A healthy soak
// therefore keeps every level's start-of-phase depth within a small
// multiple of N; sustained excursions beyond it mean the offered load
// exceeds what Theorem 4.1's advance rate mu can drain — overload or fault
// churn — and the service sheds instead of letting queues grow without
// bound. For an offered load at or above mu the closed form diverges, so
// the envelope is evaluated at lambda_eff = min(lambda, 0.9 mu): in genuine
// overload *every* finite envelope is eventually exceeded, which is exactly
// when shedding must kick in.

#include <cstdint>
#include <string>

namespace radiomc::service {

enum class AdmissionPolicy : std::uint8_t {
  kOff,    ///< admit everything (open-loop measurement mode)
  kShed,   ///< drop arrivals beyond the envelope, permanently
  kDefer,  ///< hold arrivals beyond the envelope; retry each phase
};

const char* to_string(AdmissionPolicy p) noexcept;

/// `--admission` values: "off", "shed", "defer". Throws
/// std::invalid_argument naming the bad value otherwise.
AdmissionPolicy admission_policy_from_string(const std::string& s);

struct AdmissionConfig {
  AdmissionPolicy policy = AdmissionPolicy::kOff;
  /// Queue-depth ceiling as a multiple of the per-level Hsu–Burke mean
  /// (floored at one message so a tiny mean still admits traffic).
  double envelope_multiple = 8.0;

  /// Throws std::invalid_argument when the multiple is not positive.
  void validate() const;
};

class AdmissionController {
 public:
  enum class Decision : std::uint8_t { kAdmit, kDefer, kShed };

  /// `lambda` is the offered load (mean arrivals per phase), `mu` the
  /// Theorem 4.1 advance rate.
  AdmissionController(const AdmissionConfig& cfg, double lambda, double mu);

  /// The per-level queued-message ceiling (envelope_multiple x the
  /// Hsu-Burke mean at lambda_eff, floored at 1 message).
  double level_envelope() const noexcept { return envelope_; }

  /// Decides one arrival given the current depth of the BFS level it
  /// lands on, and counts the outcome.
  Decision decide(std::uint64_t level_depth) noexcept;

  std::uint64_t admitted() const noexcept { return admitted_; }
  /// Defer *events*: a message held for k phases counts k times.
  std::uint64_t deferred() const noexcept { return deferred_; }
  std::uint64_t shed() const noexcept { return shed_; }

 private:
  AdmissionConfig cfg_;
  double envelope_ = 0.0;
  std::uint64_t admitted_ = 0;
  std::uint64_t deferred_ = 0;
  std::uint64_t shed_ = 0;
};

}  // namespace radiomc::service
