#include "service/certify.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "queueing/analysis.h"
#include "telemetry/json_writer.h"

namespace radiomc::service {

void CertifyConfig::validate() const {
  if (!(throughput_margin > 0.0 && throughput_margin < 1.0))
    throw std::invalid_argument(
        "certify config: throughput margin must be in (0, 1) — it is the "
        "fraction of the offered load the soak may fall short by");
  if (!(sojourn_multiple > 0.0))
    throw std::invalid_argument(
        "certify config: sojourn multiple must be > 0 (it scales the Thm "
        "4.15 tandem sojourn bound)");
}

SoakVerdict certify_soak(const ServeOutcome& out, double offered_rate,
                         double mu, std::uint32_t depth,
                         const CertifyConfig& cfg,
                         const HealthSummary* health) {
  cfg.validate();
  SoakVerdict v;
  v.offered_rate = offered_rate;
  v.mu = mu;
  v.depth = depth;
  v.phases = out.phases;
  v.slots = out.slots;
  v.arrivals = out.arrivals;
  v.admitted = out.admitted;
  v.deferred = out.deferred;
  v.shed = out.shed;
  v.delivered = out.delivered;
  v.duplicates = out.duplicates;
  v.degraded = out.status != RunStatus::kOk;

  v.delivered_rate = out.phases > 0
                         ? static_cast<double>(out.delivered) /
                               static_cast<double>(out.phases)
                         : 0.0;
  v.throughput_floor = (1.0 - cfg.throughput_margin) * offered_rate;
  v.throughput_ok = v.delivered_rate >= v.throughput_floor;

  v.sojourn_mean = out.sojourn_phases.mean();
  if (offered_rate < mu) {
    v.sojourn_bound = cfg.sojourn_multiple * static_cast<double>(depth) *
                      queueing::mean_wait(offered_rate, mu);
    v.sojourn_ok =
        out.sojourn_phases.count() > 0 && v.sojourn_mean <= v.sojourn_bound;
  } else {
    // No stationary sojourn exists at or beyond mu; the check cannot pass.
    v.sojourn_bound = std::numeric_limits<double>::quiet_NaN();
    v.sojourn_ok = false;
  }

  v.exactly_once_ok = out.duplicates == 0;

  v.peak_level_depth = out.peak_level_depth;
  v.queue_bound = 2.0 * out.level_envelope;
  v.queues_bounded =
      static_cast<double>(out.peak_level_depth) <= v.queue_bound;

  if (health != nullptr) {
    v.health_checked = true;
    v.health = *health;
    v.health_ok = health->trips == 0;
  }

  v.pass = v.throughput_ok && v.sojourn_ok && v.exactly_once_ok &&
           v.queues_bounded && (!v.health_checked || v.health_ok);
  return v;
}

std::string SoakVerdict::to_json() const {
  std::string out;
  telemetry::JsonWriter w(&out);
  w.begin_object();
  w.member("schema", "radiomc.soak/v1");
  w.member("pass", pass);
  w.member("degraded", degraded);

  w.key("run");
  w.begin_object();
  w.member("offered_rate", offered_rate);
  w.member("mu", mu);
  w.member("depth", static_cast<std::uint64_t>(depth));
  w.member("phases", phases);
  w.member("slots", slots);
  w.member("arrivals", arrivals);
  w.member("admitted", admitted);
  w.member("deferred", deferred);
  w.member("shed", shed);
  w.member("delivered", delivered);
  w.end_object();

  w.key("throughput");
  w.begin_object();
  w.member("rate", delivered_rate);
  w.member("floor", throughput_floor);
  w.member("ok", throughput_ok);
  w.end_object();

  w.key("sojourn");
  w.begin_object();
  w.member("mean_phases", sojourn_mean);
  w.member("bound_phases", sojourn_bound);  // null when offered >= mu
  w.member("ok", sojourn_ok);
  w.end_object();

  w.key("exactly_once");
  w.begin_object();
  w.member("duplicates", duplicates);
  w.member("ok", exactly_once_ok);
  w.end_object();

  w.key("queues");
  w.begin_object();
  w.member("peak_level_depth", peak_level_depth);
  w.member("bound", queue_bound);
  w.member("ok", queues_bounded);
  w.end_object();

  if (health_checked) {
    w.key("health");
    w.begin_object();
    w.member("windows", health.windows);
    w.member("trips", health.trips);
    w.member("clears", health.clears);
    w.member("active", health.active);
    w.member("ok", health_ok);
    w.end_object();
  }

  w.end_object();
  return out;
}

bool SoakVerdict::write_json_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string doc = to_json() + "\n";
  const bool wrote_all = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  const bool closed = std::fclose(f) == 0;
  return wrote_all && closed;
}

}  // namespace radiomc::service
