#pragma once

// Pluggable deterministic arrival processes for the continuous-traffic
// service mode (`radiomc_sim serve`).
//
// The §4.3 queueing analysis studies collection as an *open* system: new
// messages keep arriving while the network drains. Three arrival models
// cover the regimes the Hsu–Burke model cares about:
//
//  * Bernoulli(rate)  — at most one arrival per phase, the exact input
//    process of the paper's model 1/4 analysis (steady_state.h uses the
//    same law for its bounded-horizon measurement);
//  * Poisson(rate)    — unbounded batch sizes via inverse-CDF sampling on
//    a single uniform draw per phase, so the stream is a pure function of
//    the split RNG stream it is constructed with;
//  * MMPP on–off      — a two-state Markov-modulated Poisson process: a
//    per-phase coin moves the modulating chain between an `off` state
//    (mean `rate`) and an `on` burst state (mean `on_rate`), and the
//    phase's batch is Poisson with the current state's mean. The
//    stationary mean rate is the p_on/p_off-weighted mixture.
//
// Every process consumes a deterministic pattern of draws per phase
// (MMPP: one switch draw + one arrival draw; the others: one arrival
// draw), so two runs with the same seed see byte-identical arrival
// streams regardless of --jobs or wall-clock — the same discipline every
// other driver in this tree follows.

#include <cstdint>
#include <string>

#include "support/rng.h"

namespace radiomc::service {

enum class ArrivalKind : std::uint8_t { kBernoulli, kPoisson, kMmpp };

const char* to_string(ArrivalKind k) noexcept;

/// Parsed description of an arrival process; see `parse` for the CLI
/// grammar. All rates are mean arrivals per collection phase.
struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kBernoulli;
  double rate = 0.5;     ///< Bernoulli p / Poisson mean / MMPP off-state mean
  double on_rate = 0.0;  ///< MMPP only: mean while the burst state is on
  double p_on = 0.0;     ///< MMPP only: P[off -> on] per phase
  double p_off = 0.0;    ///< MMPP only: P[on -> off] per phase

  /// Throws std::invalid_argument with a specific message when the spec is
  /// contradictory (Bernoulli rate outside (0,1), nonpositive Poisson mean,
  /// MMPP switch probabilities outside (0,1], ...).
  void validate() const;

  /// Long-run mean arrivals per phase (the offered load lambda): the rate
  /// itself for Bernoulli/Poisson, the stationary mixture for MMPP.
  double mean_rate() const noexcept;

  /// `--arrival` grammar: "bernoulli:RATE", "poisson:RATE", or
  /// "mmpp:OFF_RATE:ON_RATE:P_ON:P_OFF". Throws std::invalid_argument
  /// naming the malformed field; the parsed spec is validate()d.
  static ArrivalSpec parse(const std::string& text);

  /// One-line human-readable form for run reports.
  std::string describe() const;
};

/// The process itself: one `step()` per phase returns that phase's batch
/// size. Owns its RNG stream (drivers pass `master.split(tag)`), so the
/// stream never interleaves with station or fault randomness.
class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalSpec& spec, Rng rng);

  /// Arrivals for the next phase.
  std::uint32_t step();

  /// MMPP only: whether the modulating chain is currently bursting.
  bool bursting() const noexcept { return on_; }

 private:
  std::uint32_t draw_poisson(double mean);

  ArrivalSpec spec_;
  Rng rng_;
  bool on_ = false;  ///< MMPP modulating state; starts off
};

}  // namespace radiomc::service
