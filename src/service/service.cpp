#include "service/service.h"

#include <deque>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "health/monitor.h"
#include "perf/profiler.h"
#include "queueing/analysis.h"
#include "radio/network.h"
#include "support/rng.h"
#include "support/rng_tags.h"
#include "support/util.h"

namespace radiomc::service {

namespace {

// Dedicated split tags (support/rng_tags.h): the arrival batch stream and
// the placement stream are independent of each other, of every per-station
// stream (tags 0..n-1) and of the fault stream, so changing the arrival
// law never perturbs station randomness and vice versa.

std::uint64_t tag_of(const Message& m) {
  return (static_cast<std::uint64_t>(m.origin) << 32) | m.seq;
}

}  // namespace

void ServeConfig::validate() const {
  arrival.validate();
  admission.validate();
  if (phases == 0)
    throw std::invalid_argument(
        "serve config: measured horizon must be at least one phase");
}

void validate_serve_flags(bool has_certify, bool has_horizon,
                          bool both_horizons, bool has_soak_out,
                          bool has_margin, bool has_sojourn_multiple,
                          bool has_envelope, bool has_admission) {
  if (both_horizons)
    throw std::invalid_argument(
        "--slots and --phases are mutually exclusive: give the serve "
        "horizon in one unit");
  if (has_certify && !has_horizon)
    throw std::invalid_argument(
        "--certify requires an explicit horizon (--slots N or --phases P): "
        "a soak verdict over a defaulted horizon certifies nothing");
  if (has_soak_out && !has_certify)
    throw std::invalid_argument(
        "--soak-out requires --certify (it writes the radiomc.soak/v1 "
        "verdict document)");
  if (has_margin && !has_certify)
    throw std::invalid_argument(
        "--certify-margin requires --certify (it tunes the throughput "
        "floor of the verdict)");
  if (has_sojourn_multiple && !has_certify)
    throw std::invalid_argument(
        "--certify-sojourn requires --certify (it tunes the Thm 4.15 "
        "sojourn bound of the verdict)");
  if (has_envelope && !has_admission)
    throw std::invalid_argument(
        "--envelope requires --admission shed|defer (it scales the "
        "admission controller's queue ceiling)");
}

ServeOutcome run_service(const Graph& g, const BfsTree& tree,
                         const ServeConfig& cfg, std::uint64_t seed) {
  cfg.validate();
  const NodeId n = g.num_nodes();
  require(tree.num_nodes() == n, "serve: tree/graph mismatch");
  require(n >= 2, "serve: need a non-root node");

  // Candidate origins per placement (same rule as steady_state).
  std::vector<NodeId> origins;
  for (NodeId v = 0; v < n; ++v) {
    if (v == tree.root) continue;
    if (cfg.placement == ArrivalPlacement::kUniform ||
        tree.level[v] == tree.depth)
      origins.push_back(v);
  }
  require(!origins.empty(), "serve: no arrival sites");

  Rng master(seed);
  CollectionConfig ccfg = CollectionConfig::for_graph(g);
  ccfg.dedup_guard = cfg.dedup_guard;
  ccfg.autosleep = cfg.autosleep;
  std::vector<std::unique_ptr<CollectionStation>> st;
  for (NodeId v = 0; v < n; ++v)
    st.push_back(
        std::make_unique<CollectionStation>(v, tree, ccfg, master.split(v)));
  std::deque<SingleStation> adapters;
  std::vector<Station*> ptrs;
  for (auto& s : st) adapters.emplace_back(*s);
  for (auto& a : adapters) ptrs.push_back(&a);
  RadioNetwork net(g);
  if (cfg.slot_hook != nullptr) net.set_slot_hook(cfg.slot_hook);
  // Installed only when a monitor is present: with health off the network
  // carries no trace sink at all, exactly as before this subsystem
  // existed, so health-off serve output stays byte-identical.
  if (cfg.health != nullptr) net.set_trace(cfg.health->sink());
  net.attach(std::move(ptrs));

  const std::uint64_t slots_per_phase = st[0]->clock().slots_per_phase();
  ArrivalProcess arrivals(cfg.arrival, master.split(rng_tags::kServiceArrival));
  Rng placement_rng = master.split(rng_tags::kServicePlacement);
  // Derived after the arrival/placement streams so a faulted run faces the
  // identical offered load as a fault-free run with the same seed.
  FaultSchedule fsch;
  if (cfg.faults.any()) {
    fsch = FaultSchedule(g, cfg.faults, master.split(rng_tags::kFaultStream).next());
    net.set_faults(&fsch);
  }

  const double lambda = cfg.arrival.mean_rate();
  const double mu = queueing::mu_decay();
  AdmissionController admit(cfg.admission, lambda, mu);

  ServeOutcome out;
  out.level_envelope = admit.level_envelope();

  // Live registry handles, resolved once (registry references are stable).
  // Counters hold *full-run* running totals so a SnapshotStreamer sees the
  // service breathe from slot one; the outcome's counters cover only the
  // measured window (warmup excluded), matching steady_state semantics.
  telemetry::Counter* c_arrivals = nullptr;
  telemetry::Counter* c_admitted = nullptr;
  telemetry::Counter* c_deferred = nullptr;
  telemetry::Counter* c_shed = nullptr;
  telemetry::Counter* c_delivered = nullptr;
  telemetry::Counter* c_duplicates = nullptr;
  telemetry::Gauge* g_in_system = nullptr;
  telemetry::Gauge* g_defer_backlog = nullptr;
  telemetry::Distribution* d_depth = nullptr;
  if (cfg.telemetry != nullptr) {
    auto& reg = cfg.telemetry->metrics;
    const telemetry::Labels l{{"protocol", "serve"}};
    c_arrivals = &reg.counter("service.arrivals", l);
    c_admitted = &reg.counter("service.admitted", l);
    c_deferred = &reg.counter("service.deferred", l);
    c_shed = &reg.counter("service.shed", l);
    c_delivered = &reg.counter("service.delivered", l);
    c_duplicates = &reg.counter("service.duplicates", l);
    g_in_system = &reg.gauge("service.in_system", l);
    g_defer_backlog = &reg.gauge("service.defer_backlog", l);
    d_depth = &reg.distribution("service.level_depth", l);
  }

  // Ordered so no drain over in-flight tags can pick up hash-iteration
  // order (the lint unordered-container rule's contract).
  std::map<std::uint64_t, std::uint64_t> birth_phase;  // tag -> arrival phase
  std::deque<Message> held;  // defer policy's ingress queue, FIFO
  std::vector<std::uint32_t> next_seq(n, 0);
  std::vector<std::uint64_t> depth(tree.depth + 1, 0);
  std::size_t harvested = 0;
  std::uint64_t in_system = 0;
  std::uint64_t arrivals_total = 0;
  std::uint64_t delivered_total = 0;
  double sojourn_sum_total = 0.0;  // all deliveries, warmup included

  // Controller totals at the warmup boundary, for measured-window deltas.
  std::uint64_t admitted0 = 0, deferred0 = 0, shed0 = 0;

  const std::uint64_t total_phases = cfg.warmup_phases + cfg.phases;
  perf::PerfSpan run_span(cfg.profiler, "service.run");
  for (std::uint64_t phase = 0; phase < total_phases; ++phase) {
    perf::PerfSpan phase_span(cfg.profiler, "service.phase");
    const bool measured = phase >= cfg.warmup_phases;
    if (phase == cfg.warmup_phases) {
      admitted0 = admit.admitted();
      deferred0 = admit.deferred();
      shed0 = admit.shed();
    }

    // Ground-truth start-of-phase queue depths: every in-network message
    // sits on exactly one buffer (§4.1), so summing buffers by BFS level
    // is exact. O(n) per phase against slots_per_phase engine work.
    std::fill(depth.begin(), depth.end(), 0);
    for (NodeId v = 0; v < n; ++v) {
      if (v == tree.root) continue;
      depth[tree.level[v]] += st[v]->buffer_size();
    }
    for (std::uint32_t lv = 1; lv <= tree.depth; ++lv) {
      out.peak_level_depth = std::max(out.peak_level_depth, depth[lv]);
      if (measured && d_depth != nullptr)
        d_depth->add(static_cast<std::int64_t>(depth[lv]));
    }
    if (measured) out.population.add(static_cast<double>(in_system));

    // Retry the defer queue head-of-line FIFO: admit while there is room,
    // stop at the first message still over the envelope (one defer event
    // per phase for the whole queue, so the counter tracks held phases of
    // the head, not queue length).
    while (!held.empty()) {
      const std::uint32_t lv = tree.level[held.front().origin];
      if (admit.decide(depth[lv]) != AdmissionController::Decision::kAdmit)
        break;
      st[held.front().origin]->inject(held.front());
      ++depth[lv];
      ++in_system;
      held.pop_front();
    }

    // This phase's fresh offered load.
    const std::uint32_t batch = arrivals.step();
    for (std::uint32_t i = 0; i < batch; ++i) {
      const NodeId v = origins[placement_rng.next_below(origins.size())];
      ++arrivals_total;
      if (measured) ++out.arrivals;
      Message m;
      m.kind = MsgKind::kData;
      m.origin = v;
      m.seq = next_seq[v]++;
      const std::uint32_t lv = tree.level[v];
      switch (admit.decide(depth[lv])) {
        case AdmissionController::Decision::kAdmit:
          st[v]->inject(m);
          birth_phase[tag_of(m)] = phase;
          ++depth[lv];
          ++in_system;
          break;
        case AdmissionController::Decision::kDefer:
          // Sojourn is measured from *arrival*, so backpressure shows up
          // as latency, not as a hidden queue.
          birth_phase[tag_of(m)] = phase;
          held.push_back(m);
          break;
        case AdmissionController::Decision::kShed:
          break;
      }
    }

    net.run(slots_per_phase);

    const auto& sink = st[tree.root]->root_sink();
    for (; harvested < sink.size(); ++harvested) {
      const Message& m = sink[harvested].msg;
      const auto it = birth_phase.find(tag_of(m));
      if (it == birth_phase.end()) {
        // Root delivery of a tag never admitted or already delivered: an
        // exactly-once violation, counted over the whole run.
        ++out.duplicates;
        continue;
      }
      --in_system;
      ++delivered_total;
      sojourn_sum_total += static_cast<double>(phase - it->second + 1);
      if (measured) {
        ++out.delivered;
        out.sojourn_phases.add(static_cast<double>(phase - it->second + 1));
      }
      birth_phase.erase(it);
    }

    if (cfg.telemetry != nullptr) {
      c_arrivals->set(arrivals_total);
      c_admitted->set(admit.admitted());
      c_deferred->set(admit.deferred());
      c_shed->set(admit.shed());
      c_delivered->set(delivered_total);
      c_duplicates->set(out.duplicates);
      g_in_system->set(static_cast<double>(in_system));
      g_defer_backlog->set(static_cast<double>(held.size()));
    }

    if (cfg.health != nullptr) {
      health::PhaseSample hs;
      hs.phase = phase;
      hs.arrivals = arrivals_total;
      hs.delivered = delivered_total;
      hs.sojourn_sum = sojourn_sum_total;
      hs.in_system = in_system;
      hs.engine_polls = net.engine_stats().station_polls;
      hs.wake_events = net.engine_stats().wake_events;
      cfg.health->on_phase(hs);
    }
  }

  out.phases = cfg.phases;
  out.slots = net.metrics().slots;
  out.admitted = admit.admitted() - admitted0;
  out.deferred = admit.deferred() - deferred0;
  out.shed = admit.shed() - shed0;
  out.backlog = in_system;
  out.defer_backlog = held.size();
  out.engine_polls = net.engine_stats().station_polls;
  out.status = (admit.shed() > 0 || admit.deferred() > 0 ||
                out.duplicates > 0 ||
                static_cast<double>(out.peak_level_depth) >
                    2.0 * out.level_envelope)
                   ? RunStatus::kDegraded
                   : RunStatus::kOk;

  if (cfg.telemetry != nullptr) {
    telemetry::publish_net_metrics(net.metrics(), cfg.telemetry->metrics,
                                   "serve");
    if (cfg.faults.any())
      telemetry::publish_fault_metrics(fsch, net.metrics(),
                                       cfg.telemetry->metrics, "serve");
  }
  if (cfg.profiler != nullptr) {
    cfg.profiler->count("service.slots", out.slots);
    cfg.profiler->count("service.phases", total_phases);
    cfg.profiler->count("service.delivered", delivered_total);
  }
  return out;
}

}  // namespace radiomc::service
