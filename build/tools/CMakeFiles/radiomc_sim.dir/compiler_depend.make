# Empty compiler generated dependencies file for radiomc_sim.
# This may be replaced when dependencies are built.
