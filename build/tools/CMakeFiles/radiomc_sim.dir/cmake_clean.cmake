file(REMOVE_RECURSE
  "CMakeFiles/radiomc_sim.dir/radiomc_sim.cpp.o"
  "CMakeFiles/radiomc_sim.dir/radiomc_sim.cpp.o.d"
  "radiomc_sim"
  "radiomc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radiomc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
