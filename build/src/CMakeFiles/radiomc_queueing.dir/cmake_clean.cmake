file(REMOVE_RECURSE
  "CMakeFiles/radiomc_queueing.dir/queueing/analysis.cpp.o"
  "CMakeFiles/radiomc_queueing.dir/queueing/analysis.cpp.o.d"
  "CMakeFiles/radiomc_queueing.dir/queueing/bernoulli_server.cpp.o"
  "CMakeFiles/radiomc_queueing.dir/queueing/bernoulli_server.cpp.o.d"
  "CMakeFiles/radiomc_queueing.dir/queueing/models.cpp.o"
  "CMakeFiles/radiomc_queueing.dir/queueing/models.cpp.o.d"
  "CMakeFiles/radiomc_queueing.dir/queueing/partition.cpp.o"
  "CMakeFiles/radiomc_queueing.dir/queueing/partition.cpp.o.d"
  "CMakeFiles/radiomc_queueing.dir/queueing/tandem.cpp.o"
  "CMakeFiles/radiomc_queueing.dir/queueing/tandem.cpp.o.d"
  "libradiomc_queueing.a"
  "libradiomc_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radiomc_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
