# Empty dependencies file for radiomc_queueing.
# This may be replaced when dependencies are built.
