
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queueing/analysis.cpp" "src/CMakeFiles/radiomc_queueing.dir/queueing/analysis.cpp.o" "gcc" "src/CMakeFiles/radiomc_queueing.dir/queueing/analysis.cpp.o.d"
  "/root/repo/src/queueing/bernoulli_server.cpp" "src/CMakeFiles/radiomc_queueing.dir/queueing/bernoulli_server.cpp.o" "gcc" "src/CMakeFiles/radiomc_queueing.dir/queueing/bernoulli_server.cpp.o.d"
  "/root/repo/src/queueing/models.cpp" "src/CMakeFiles/radiomc_queueing.dir/queueing/models.cpp.o" "gcc" "src/CMakeFiles/radiomc_queueing.dir/queueing/models.cpp.o.d"
  "/root/repo/src/queueing/partition.cpp" "src/CMakeFiles/radiomc_queueing.dir/queueing/partition.cpp.o" "gcc" "src/CMakeFiles/radiomc_queueing.dir/queueing/partition.cpp.o.d"
  "/root/repo/src/queueing/tandem.cpp" "src/CMakeFiles/radiomc_queueing.dir/queueing/tandem.cpp.o" "gcc" "src/CMakeFiles/radiomc_queueing.dir/queueing/tandem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/radiomc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/radiomc_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/radiomc_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/radiomc_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
