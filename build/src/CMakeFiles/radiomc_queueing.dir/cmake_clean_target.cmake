file(REMOVE_RECURSE
  "libradiomc_queueing.a"
)
