file(REMOVE_RECURSE
  "libradiomc_radio.a"
)
