file(REMOVE_RECURSE
  "CMakeFiles/radiomc_radio.dir/radio/network.cpp.o"
  "CMakeFiles/radiomc_radio.dir/radio/network.cpp.o.d"
  "CMakeFiles/radiomc_radio.dir/radio/schedule.cpp.o"
  "CMakeFiles/radiomc_radio.dir/radio/schedule.cpp.o.d"
  "libradiomc_radio.a"
  "libradiomc_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radiomc_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
