# Empty compiler generated dependencies file for radiomc_radio.
# This may be replaced when dependencies are built.
