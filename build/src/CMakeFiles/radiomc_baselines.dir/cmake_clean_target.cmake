file(REMOVE_RECURSE
  "libradiomc_baselines.a"
)
