file(REMOVE_RECURSE
  "CMakeFiles/radiomc_baselines.dir/baselines/naive_kbroadcast.cpp.o"
  "CMakeFiles/radiomc_baselines.dir/baselines/naive_kbroadcast.cpp.o.d"
  "CMakeFiles/radiomc_baselines.dir/baselines/round_robin_broadcast.cpp.o"
  "CMakeFiles/radiomc_baselines.dir/baselines/round_robin_broadcast.cpp.o.d"
  "CMakeFiles/radiomc_baselines.dir/baselines/tdma_collection.cpp.o"
  "CMakeFiles/radiomc_baselines.dir/baselines/tdma_collection.cpp.o.d"
  "CMakeFiles/radiomc_baselines.dir/baselines/wave_schedule.cpp.o"
  "CMakeFiles/radiomc_baselines.dir/baselines/wave_schedule.cpp.o.d"
  "libradiomc_baselines.a"
  "libradiomc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radiomc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
