# Empty dependencies file for radiomc_baselines.
# This may be replaced when dependencies are built.
