
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/naive_kbroadcast.cpp" "src/CMakeFiles/radiomc_baselines.dir/baselines/naive_kbroadcast.cpp.o" "gcc" "src/CMakeFiles/radiomc_baselines.dir/baselines/naive_kbroadcast.cpp.o.d"
  "/root/repo/src/baselines/round_robin_broadcast.cpp" "src/CMakeFiles/radiomc_baselines.dir/baselines/round_robin_broadcast.cpp.o" "gcc" "src/CMakeFiles/radiomc_baselines.dir/baselines/round_robin_broadcast.cpp.o.d"
  "/root/repo/src/baselines/tdma_collection.cpp" "src/CMakeFiles/radiomc_baselines.dir/baselines/tdma_collection.cpp.o" "gcc" "src/CMakeFiles/radiomc_baselines.dir/baselines/tdma_collection.cpp.o.d"
  "/root/repo/src/baselines/wave_schedule.cpp" "src/CMakeFiles/radiomc_baselines.dir/baselines/wave_schedule.cpp.o" "gcc" "src/CMakeFiles/radiomc_baselines.dir/baselines/wave_schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/radiomc_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/radiomc_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/radiomc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/radiomc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
