
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/bfs_build.cpp" "src/CMakeFiles/radiomc_protocols.dir/protocols/bfs_build.cpp.o" "gcc" "src/CMakeFiles/radiomc_protocols.dir/protocols/bfs_build.cpp.o.d"
  "/root/repo/src/protocols/bgi_broadcast.cpp" "src/CMakeFiles/radiomc_protocols.dir/protocols/bgi_broadcast.cpp.o" "gcc" "src/CMakeFiles/radiomc_protocols.dir/protocols/bgi_broadcast.cpp.o.d"
  "/root/repo/src/protocols/broadcast_service.cpp" "src/CMakeFiles/radiomc_protocols.dir/protocols/broadcast_service.cpp.o" "gcc" "src/CMakeFiles/radiomc_protocols.dir/protocols/broadcast_service.cpp.o.d"
  "/root/repo/src/protocols/collection.cpp" "src/CMakeFiles/radiomc_protocols.dir/protocols/collection.cpp.o" "gcc" "src/CMakeFiles/radiomc_protocols.dir/protocols/collection.cpp.o.d"
  "/root/repo/src/protocols/decay.cpp" "src/CMakeFiles/radiomc_protocols.dir/protocols/decay.cpp.o" "gcc" "src/CMakeFiles/radiomc_protocols.dir/protocols/decay.cpp.o.d"
  "/root/repo/src/protocols/dfs_numbering.cpp" "src/CMakeFiles/radiomc_protocols.dir/protocols/dfs_numbering.cpp.o" "gcc" "src/CMakeFiles/radiomc_protocols.dir/protocols/dfs_numbering.cpp.o.d"
  "/root/repo/src/protocols/distribution.cpp" "src/CMakeFiles/radiomc_protocols.dir/protocols/distribution.cpp.o" "gcc" "src/CMakeFiles/radiomc_protocols.dir/protocols/distribution.cpp.o.d"
  "/root/repo/src/protocols/ethernet_emulation.cpp" "src/CMakeFiles/radiomc_protocols.dir/protocols/ethernet_emulation.cpp.o" "gcc" "src/CMakeFiles/radiomc_protocols.dir/protocols/ethernet_emulation.cpp.o.d"
  "/root/repo/src/protocols/leader_election.cpp" "src/CMakeFiles/radiomc_protocols.dir/protocols/leader_election.cpp.o" "gcc" "src/CMakeFiles/radiomc_protocols.dir/protocols/leader_election.cpp.o.d"
  "/root/repo/src/protocols/point_to_point.cpp" "src/CMakeFiles/radiomc_protocols.dir/protocols/point_to_point.cpp.o" "gcc" "src/CMakeFiles/radiomc_protocols.dir/protocols/point_to_point.cpp.o.d"
  "/root/repo/src/protocols/ranking.cpp" "src/CMakeFiles/radiomc_protocols.dir/protocols/ranking.cpp.o" "gcc" "src/CMakeFiles/radiomc_protocols.dir/protocols/ranking.cpp.o.d"
  "/root/repo/src/protocols/setup.cpp" "src/CMakeFiles/radiomc_protocols.dir/protocols/setup.cpp.o" "gcc" "src/CMakeFiles/radiomc_protocols.dir/protocols/setup.cpp.o.d"
  "/root/repo/src/protocols/steady_state.cpp" "src/CMakeFiles/radiomc_protocols.dir/protocols/steady_state.cpp.o" "gcc" "src/CMakeFiles/radiomc_protocols.dir/protocols/steady_state.cpp.o.d"
  "/root/repo/src/protocols/tree.cpp" "src/CMakeFiles/radiomc_protocols.dir/protocols/tree.cpp.o" "gcc" "src/CMakeFiles/radiomc_protocols.dir/protocols/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/radiomc_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/radiomc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/radiomc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
