file(REMOVE_RECURSE
  "libradiomc_protocols.a"
)
