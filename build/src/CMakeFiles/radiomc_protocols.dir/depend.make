# Empty dependencies file for radiomc_protocols.
# This may be replaced when dependencies are built.
