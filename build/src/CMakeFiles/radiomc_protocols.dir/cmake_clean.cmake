file(REMOVE_RECURSE
  "CMakeFiles/radiomc_protocols.dir/protocols/bfs_build.cpp.o"
  "CMakeFiles/radiomc_protocols.dir/protocols/bfs_build.cpp.o.d"
  "CMakeFiles/radiomc_protocols.dir/protocols/bgi_broadcast.cpp.o"
  "CMakeFiles/radiomc_protocols.dir/protocols/bgi_broadcast.cpp.o.d"
  "CMakeFiles/radiomc_protocols.dir/protocols/broadcast_service.cpp.o"
  "CMakeFiles/radiomc_protocols.dir/protocols/broadcast_service.cpp.o.d"
  "CMakeFiles/radiomc_protocols.dir/protocols/collection.cpp.o"
  "CMakeFiles/radiomc_protocols.dir/protocols/collection.cpp.o.d"
  "CMakeFiles/radiomc_protocols.dir/protocols/decay.cpp.o"
  "CMakeFiles/radiomc_protocols.dir/protocols/decay.cpp.o.d"
  "CMakeFiles/radiomc_protocols.dir/protocols/dfs_numbering.cpp.o"
  "CMakeFiles/radiomc_protocols.dir/protocols/dfs_numbering.cpp.o.d"
  "CMakeFiles/radiomc_protocols.dir/protocols/distribution.cpp.o"
  "CMakeFiles/radiomc_protocols.dir/protocols/distribution.cpp.o.d"
  "CMakeFiles/radiomc_protocols.dir/protocols/ethernet_emulation.cpp.o"
  "CMakeFiles/radiomc_protocols.dir/protocols/ethernet_emulation.cpp.o.d"
  "CMakeFiles/radiomc_protocols.dir/protocols/leader_election.cpp.o"
  "CMakeFiles/radiomc_protocols.dir/protocols/leader_election.cpp.o.d"
  "CMakeFiles/radiomc_protocols.dir/protocols/point_to_point.cpp.o"
  "CMakeFiles/radiomc_protocols.dir/protocols/point_to_point.cpp.o.d"
  "CMakeFiles/radiomc_protocols.dir/protocols/ranking.cpp.o"
  "CMakeFiles/radiomc_protocols.dir/protocols/ranking.cpp.o.d"
  "CMakeFiles/radiomc_protocols.dir/protocols/setup.cpp.o"
  "CMakeFiles/radiomc_protocols.dir/protocols/setup.cpp.o.d"
  "CMakeFiles/radiomc_protocols.dir/protocols/steady_state.cpp.o"
  "CMakeFiles/radiomc_protocols.dir/protocols/steady_state.cpp.o.d"
  "CMakeFiles/radiomc_protocols.dir/protocols/tree.cpp.o"
  "CMakeFiles/radiomc_protocols.dir/protocols/tree.cpp.o.d"
  "libradiomc_protocols.a"
  "libradiomc_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radiomc_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
