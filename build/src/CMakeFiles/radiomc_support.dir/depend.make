# Empty dependencies file for radiomc_support.
# This may be replaced when dependencies are built.
