file(REMOVE_RECURSE
  "libradiomc_support.a"
)
