file(REMOVE_RECURSE
  "CMakeFiles/radiomc_support.dir/support/rng.cpp.o"
  "CMakeFiles/radiomc_support.dir/support/rng.cpp.o.d"
  "CMakeFiles/radiomc_support.dir/support/stats.cpp.o"
  "CMakeFiles/radiomc_support.dir/support/stats.cpp.o.d"
  "libradiomc_support.a"
  "libradiomc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radiomc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
