# Empty compiler generated dependencies file for radiomc_graph.
# This may be replaced when dependencies are built.
