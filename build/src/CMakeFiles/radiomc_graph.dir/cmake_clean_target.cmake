file(REMOVE_RECURSE
  "libradiomc_graph.a"
)
