file(REMOVE_RECURSE
  "CMakeFiles/radiomc_graph.dir/graph/algorithms.cpp.o"
  "CMakeFiles/radiomc_graph.dir/graph/algorithms.cpp.o.d"
  "CMakeFiles/radiomc_graph.dir/graph/generators.cpp.o"
  "CMakeFiles/radiomc_graph.dir/graph/generators.cpp.o.d"
  "CMakeFiles/radiomc_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/radiomc_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/radiomc_graph.dir/graph/graph_io.cpp.o"
  "CMakeFiles/radiomc_graph.dir/graph/graph_io.cpp.o.d"
  "CMakeFiles/radiomc_graph.dir/graph/topology_spec.cpp.o"
  "CMakeFiles/radiomc_graph.dir/graph/topology_spec.cpp.o.d"
  "libradiomc_graph.a"
  "libradiomc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radiomc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
