file(REMOVE_RECURSE
  "CMakeFiles/ethernet_test.dir/ethernet_test.cpp.o"
  "CMakeFiles/ethernet_test.dir/ethernet_test.cpp.o.d"
  "ethernet_test"
  "ethernet_test.pdb"
  "ethernet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethernet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
