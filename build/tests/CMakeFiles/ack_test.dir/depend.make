# Empty dependencies file for ack_test.
# This may be replaced when dependencies are built.
