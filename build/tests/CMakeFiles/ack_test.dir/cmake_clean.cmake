file(REMOVE_RECURSE
  "CMakeFiles/ack_test.dir/ack_test.cpp.o"
  "CMakeFiles/ack_test.dir/ack_test.cpp.o.d"
  "ack_test"
  "ack_test.pdb"
  "ack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
