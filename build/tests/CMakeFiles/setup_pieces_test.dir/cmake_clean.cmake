file(REMOVE_RECURSE
  "CMakeFiles/setup_pieces_test.dir/setup_pieces_test.cpp.o"
  "CMakeFiles/setup_pieces_test.dir/setup_pieces_test.cpp.o.d"
  "setup_pieces_test"
  "setup_pieces_test.pdb"
  "setup_pieces_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setup_pieces_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
