# Empty dependencies file for setup_pieces_test.
# This may be replaced when dependencies are built.
