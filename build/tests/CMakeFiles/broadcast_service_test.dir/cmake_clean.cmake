file(REMOVE_RECURSE
  "CMakeFiles/broadcast_service_test.dir/broadcast_service_test.cpp.o"
  "CMakeFiles/broadcast_service_test.dir/broadcast_service_test.cpp.o.d"
  "broadcast_service_test"
  "broadcast_service_test.pdb"
  "broadcast_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broadcast_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
