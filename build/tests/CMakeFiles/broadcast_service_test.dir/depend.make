# Empty dependencies file for broadcast_service_test.
# This may be replaced when dependencies are built.
