file(REMOVE_RECURSE
  "CMakeFiles/news_feed_broadcast.dir/news_feed_broadcast.cpp.o"
  "CMakeFiles/news_feed_broadcast.dir/news_feed_broadcast.cpp.o.d"
  "news_feed_broadcast"
  "news_feed_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_feed_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
