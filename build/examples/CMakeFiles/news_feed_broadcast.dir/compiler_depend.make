# Empty compiler generated dependencies file for news_feed_broadcast.
# This may be replaced when dependencies are built.
