# Empty dependencies file for sensor_collection.
# This may be replaced when dependencies are built.
