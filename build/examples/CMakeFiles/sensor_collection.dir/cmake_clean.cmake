file(REMOVE_RECURSE
  "CMakeFiles/sensor_collection.dir/sensor_collection.cpp.o"
  "CMakeFiles/sensor_collection.dir/sensor_collection.cpp.o.d"
  "sensor_collection"
  "sensor_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
