file(REMOVE_RECURSE
  "CMakeFiles/shared_bus.dir/shared_bus.cpp.o"
  "CMakeFiles/shared_bus.dir/shared_bus.cpp.o.d"
  "shared_bus"
  "shared_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
