# Empty compiler generated dependencies file for p2p_messenger.
# This may be replaced when dependencies are built.
