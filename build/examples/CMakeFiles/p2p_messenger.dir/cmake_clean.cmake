file(REMOVE_RECURSE
  "CMakeFiles/p2p_messenger.dir/p2p_messenger.cpp.o"
  "CMakeFiles/p2p_messenger.dir/p2p_messenger.cpp.o.d"
  "p2p_messenger"
  "p2p_messenger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_messenger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
