file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_tandem.dir/bench_e7_tandem.cpp.o"
  "CMakeFiles/bench_e7_tandem.dir/bench_e7_tandem.cpp.o.d"
  "bench_e7_tandem"
  "bench_e7_tandem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_tandem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
