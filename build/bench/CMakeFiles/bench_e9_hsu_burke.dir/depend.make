# Empty dependencies file for bench_e9_hsu_burke.
# This may be replaced when dependencies are built.
