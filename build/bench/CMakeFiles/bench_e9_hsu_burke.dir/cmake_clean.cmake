file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_hsu_burke.dir/bench_e9_hsu_burke.cpp.o"
  "CMakeFiles/bench_e9_hsu_burke.dir/bench_e9_hsu_burke.cpp.o.d"
  "bench_e9_hsu_burke"
  "bench_e9_hsu_burke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_hsu_burke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
