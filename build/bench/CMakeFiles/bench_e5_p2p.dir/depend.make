# Empty dependencies file for bench_e5_p2p.
# This may be replaced when dependencies are built.
