# Empty compiler generated dependencies file for bench_e1_decay.
# This may be replaced when dependencies are built.
