# Empty dependencies file for bench_e8_models.
# This may be replaced when dependencies are built.
