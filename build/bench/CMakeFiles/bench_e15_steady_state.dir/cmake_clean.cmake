file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_steady_state.dir/bench_e15_steady_state.cpp.o"
  "CMakeFiles/bench_e15_steady_state.dir/bench_e15_steady_state.cpp.o.d"
  "bench_e15_steady_state"
  "bench_e15_steady_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_steady_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
