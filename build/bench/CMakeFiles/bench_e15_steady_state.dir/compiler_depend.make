# Empty compiler generated dependencies file for bench_e15_steady_state.
# This may be replaced when dependencies are built.
