file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_phase_advance.dir/bench_e2_phase_advance.cpp.o"
  "CMakeFiles/bench_e2_phase_advance.dir/bench_e2_phase_advance.cpp.o.d"
  "bench_e2_phase_advance"
  "bench_e2_phase_advance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_phase_advance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
