# Empty compiler generated dependencies file for bench_e2_phase_advance.
# This may be replaced when dependencies are built.
