# Empty dependencies file for bench_e3_setup.
# This may be replaced when dependencies are built.
