file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_setup.dir/bench_e3_setup.cpp.o"
  "CMakeFiles/bench_e3_setup.dir/bench_e3_setup.cpp.o.d"
  "bench_e3_setup"
  "bench_e3_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
