file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_ranking.dir/bench_e10_ranking.cpp.o"
  "CMakeFiles/bench_e10_ranking.dir/bench_e10_ranking.cpp.o.d"
  "bench_e10_ranking"
  "bench_e10_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
