# Empty dependencies file for bench_e10_ranking.
# This may be replaced when dependencies are built.
