file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_collection.dir/bench_e4_collection.cpp.o"
  "CMakeFiles/bench_e4_collection.dir/bench_e4_collection.cpp.o.d"
  "bench_e4_collection"
  "bench_e4_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
