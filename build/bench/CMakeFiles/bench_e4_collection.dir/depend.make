# Empty dependencies file for bench_e4_collection.
# This may be replaced when dependencies are built.
