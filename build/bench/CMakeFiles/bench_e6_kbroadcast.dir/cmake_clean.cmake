file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_kbroadcast.dir/bench_e6_kbroadcast.cpp.o"
  "CMakeFiles/bench_e6_kbroadcast.dir/bench_e6_kbroadcast.cpp.o.d"
  "bench_e6_kbroadcast"
  "bench_e6_kbroadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_kbroadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
