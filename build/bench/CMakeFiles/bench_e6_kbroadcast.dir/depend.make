# Empty dependencies file for bench_e6_kbroadcast.
# This may be replaced when dependencies are built.
