// E12 — ablations of the paper's slot-level design choices:
//  (a) §2.2 mod-3 level gating: "This increases the duration of our
//      protocols by a factor of 3" — but confines collisions to adjacent
//      levels. Measured cost factor on collection.
//  (b) §3 ack subslots: "it slows down the protocol by a factor of 2" —
//      the price of deterministic, loss-free climbing.
//  (c) §1.4 separate channels vs odd/even time multiplexing for the
//      broadcast service.
//  (d) Decay invocation length: the 2 ceil(log2 Delta) choice vs shorter
//      and longer invocations (collection completion time).
//
// Sections (a), (c) and (d) shard their repetitions across --jobs threads
// with streams split off in the historical loop order; (b) is a pure
// arithmetic identity.

#include <vector>

#include "common.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/broadcast_service.h"
#include "protocols/collection.h"
#include "protocols/tree.h"
#include "support/rng.h"
#include "support/util.h"

using namespace radiomc;
using namespace radiomc::bench;

namespace {

std::vector<Message> workload(const Graph& g, int k, Rng& r) {
  std::vector<Message> init;
  for (int i = 0; i < k; ++i) {
    Message m;
    m.kind = MsgKind::kData;
    m.origin = static_cast<NodeId>(1 + r.next_below(g.num_nodes() - 1));
    m.seq = static_cast<std::uint32_t>(i);
    init.push_back(m);
  }
  return init;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  RunTimer timer;
  Rng rng(0xE12);
  const Graph g = gen::grid(6, 6);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const int k = 64;
  JsonEmitter json("E12",
                   "mod-3 gating x3; ack subslots x2; channel multiplexing "
                   "~x2; decay length knee");
  bool pass = true;

  header("E12a: mod-3 level gating (§2.2)",
         "gating multiplies the slot budget by 3; without it collisions "
         "cross levels but acks keep the protocol correct");
  {
    constexpr int kReps = 4;
    std::vector<Rng> streams;
    for (int rep = 0; rep < kReps; ++rep) streams.push_back(rng.split(rep));
    struct Trial {
      double with = 0, without = 0;
    };
    const auto trials =
        run_indexed(kReps, opt.jobs, [&](std::uint64_t i) {
          Rng r = streams[i];
          auto init = workload(g, k, r);
          Trial tr;
          tr.with = static_cast<double>(
              run_collection(g, tree, init, CollectionConfig::for_graph(g),
                             r.next())
                  .slots);
          CollectionConfig cfg = CollectionConfig::for_graph(g);
          cfg.slots.mod3_gating = false;
          tr.without = static_cast<double>(
              run_collection(g, tree, init, cfg, r.next()).slots);
          return tr;
        });
    OnlineStats with, without;
    for (const auto& tr : trials) {
      with.add(tr.with);
      without.add(tr.without);
    }
    Table t({"variant", "slots", "factor"});
    t.row({"mod3 on", num(with.mean(), 0),
           num(with.mean() / without.mean(), 2)});
    t.row({"mod3 off", num(without.mean(), 0), "1.00"});
    t.print();
    const bool ok = with.mean() / without.mean() < 3.2;
    verdict(ok,
            "observed slow-down at most the paper's x3 (often less: gated "
            "phases waste fewer transmissions on cross-level collisions)");
    json.row({{"section", "a_mod3_gating"},
              {"gated_slots_mean", with.mean()},
              {"plain_slots_mean", without.mean()},
              {"factor", with.mean() / without.mean()},
              {"ok", ok}});
    pass = pass && ok;
  }

  header("E12b: acknowledgement subslots (§3)",
         "acks halve the data rate (x2 slots) but make every hop loss-free");
  {
    // Correctness requires acks; the x2 is structural. We surface it by
    // counting data opportunities per phase with and without ack subslots.
    SlotStructure with_acks;
    with_acks.decay_len = decay_length(g.max_degree());
    SlotStructure no_acks = with_acks;
    no_acks.ack_subslots = false;
    PhaseClock cw(with_acks), cn(no_acks);
    Table t({"variant", "slots/phase"});
    t.row({"acks on", num(std::uint64_t(cw.slots_per_phase()))});
    t.row({"acks off", num(std::uint64_t(cn.slots_per_phase()))});
    t.print();
    const bool ok = cw.slots_per_phase() == 2 * cn.slots_per_phase();
    verdict(ok, "exactly the paper's factor 2");
    json.row({{"section", "b_ack_subslots"},
              {"slots_per_phase_acks", cw.slots_per_phase()},
              {"slots_per_phase_no_acks", cn.slots_per_phase()},
              {"ok", ok}});
    pass = pass && ok;
  }

  header("E12c: separate channels vs time multiplexing (§1.4)",
         "odd/even multiplexing halves each subprotocol's rate: ~2x slots");
  {
    constexpr int kReps = 3;
    std::vector<Rng> streams;
    for (int rep = 0; rep < kReps; ++rep)
      streams.push_back(rng.split(100 + rep));
    struct Trial {
      double sep = 0, tdm = 0;
    };
    const auto trials =
        run_indexed(kReps, opt.jobs, [&](std::uint64_t i) {
          Rng r = streams[i];
          std::vector<NodeId> sources;
          for (int j = 0; j < 32; ++j)
            sources.push_back(
                static_cast<NodeId>(r.next_below(g.num_nodes())));
          Trial tr;
          BroadcastServiceConfig c1 = BroadcastServiceConfig::for_graph(g);
          tr.sep = static_cast<double>(
              run_k_broadcast(g, tree, sources, c1, r.next()).slots);
          BroadcastServiceConfig c2 = BroadcastServiceConfig::for_graph(g);
          c2.mode = BroadcastServiceConfig::ChannelMode::kTimeDivision;
          tr.tdm = static_cast<double>(
              run_k_broadcast(g, tree, sources, c2, r.next()).slots);
          return tr;
        });
    OnlineStats sep, tdm;
    for (const auto& tr : trials) {
      sep.add(tr.sep);
      tdm.add(tr.tdm);
    }
    Table t({"variant", "slots", "factor"});
    t.row({"separate ch", num(sep.mean(), 0), "1.00"});
    t.row({"time division", num(tdm.mean(), 0),
           num(tdm.mean() / sep.mean(), 2)});
    t.print();
    const bool ok =
        tdm.mean() / sep.mean() > 1.3 && tdm.mean() / sep.mean() < 3.0;
    verdict(ok, "multiplexing costs about the expected factor 2");
    json.row({{"section", "c_channel_multiplexing"},
              {"separate_slots_mean", sep.mean()},
              {"tdm_slots_mean", tdm.mean()},
              {"factor", tdm.mean() / sep.mean()},
              {"ok", ok}});
    pass = pass && ok;
  }

  header("E12d: Decay length under high fan-in",
         "Decay must survive log2(Delta) halvings to isolate one of Delta "
         "contenders: short invocations collapse on a star, overlong ones "
         "waste slots linearly; 2 ceil(log2 Delta) is near the knee");
  {
    // 64 leaves all contending for the hub: the worst case Decay's
    // 2 log2(Delta) length is designed for. (On low-degree graphs like the
    // grid, shorter invocations win — the length is a worst-case choice.)
    const Graph star = gen::star(65);
    const BfsTree stree = oracle_bfs_tree(star, 0);
    const std::uint32_t base = decay_length(star.max_degree());  // 12
    // A too-short Decay essentially never isolates one of 64 contenders
    // (success ~ 32 * 2^-32 per phase for len = 2), so cap the runs and
    // report the cap as "did not finish" — which is itself the result.
    const SlotTime cap = 300'000;
    const std::vector<std::uint32_t> lens = {2u, 4u, 8u, base, 2 * base,
                                             4 * base};
    constexpr int kReps = 3;
    std::vector<Rng> streams;
    for (std::uint32_t len : lens)
      for (int rep = 0; rep < kReps; ++rep)
        streams.push_back(rng.split(200 + len * 10 + rep));
    struct Trial {
      double slots = 0;
      bool finished = true;
    };
    const auto trials =
        run_indexed(streams.size(), opt.jobs, [&](std::uint64_t i) {
          const std::uint32_t len = lens[i / kReps];
          Rng r = streams[i];
          std::vector<Message> init;
          for (NodeId v = 1; v < star.num_nodes(); ++v) {
            Message m;
            m.kind = MsgKind::kData;
            m.origin = v;
            init.push_back(m);
          }
          CollectionConfig cfg = CollectionConfig::for_graph(star);
          cfg.slots.decay_len = len;
          const auto out =
              run_collection(star, stree, init, cfg, r.next(), cap);
          return Trial{static_cast<double>(out.slots), out.completed};
        });
    Table t({"decay_len", "collection slots"});
    double best = 1e18, at_base = 0;
    for (std::size_t li = 0; li < lens.size(); ++li) {
      const std::uint32_t len = lens[li];
      OnlineStats s;
      bool finished = true;
      for (int rep = 0; rep < kReps; ++rep) {
        const Trial& tr = trials[li * kReps + rep];
        finished = finished && tr.finished;
        s.add(tr.slots);
      }
      if (len == base) at_base = s.mean();
      best = std::min(best, s.mean());
      t.row({num(std::uint64_t(len)),
             finished ? num(s.mean(), 0)
                      : (">" + num(std::uint64_t(cap)) + " (DNF)")});
      json.row({{"section", "d_decay_length"},
                {"decay_len", len},
                {"slots_mean", s.mean()},
                {"finished", finished}});
    }
    t.print();
    const bool ok = at_base < 1.6 * best;
    verdict(ok,
            "the paper's 2 log2(Delta) sits within 60% of the empirical "
            "best under Delta-way contention");
    pass = pass && ok;
  }
  json.pass(pass);
  json.set_run_info(opt.jobs, timer.wall_ms(), timer.cpu_ms());
  return 0;
}
