// E12 — ablations of the paper's slot-level design choices:
//  (a) §2.2 mod-3 level gating: "This increases the duration of our
//      protocols by a factor of 3" — but confines collisions to adjacent
//      levels. Measured cost factor on collection.
//  (b) §3 ack subslots: "it slows down the protocol by a factor of 2" —
//      the price of deterministic, loss-free climbing.
//  (c) §1.4 separate channels vs odd/even time multiplexing for the
//      broadcast service.
//  (d) Decay invocation length: the 2 ceil(log2 Delta) choice vs shorter
//      and longer invocations (collection completion time).

#include <vector>

#include "common.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/broadcast_service.h"
#include "protocols/collection.h"
#include "protocols/tree.h"
#include "support/rng.h"
#include "support/util.h"

using namespace radiomc;
using namespace radiomc::bench;

namespace {

std::vector<Message> workload(const Graph& g, int k, Rng& r) {
  std::vector<Message> init;
  for (int i = 0; i < k; ++i) {
    Message m;
    m.kind = MsgKind::kData;
    m.origin = static_cast<NodeId>(1 + r.next_below(g.num_nodes() - 1));
    m.seq = static_cast<std::uint32_t>(i);
    init.push_back(m);
  }
  return init;
}

}  // namespace

int main() {
  Rng rng(0xE12);
  const Graph g = gen::grid(6, 6);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const int k = 64;

  header("E12a: mod-3 level gating (§2.2)",
         "gating multiplies the slot budget by 3; without it collisions "
         "cross levels but acks keep the protocol correct");
  {
    OnlineStats with, without;
    for (int rep = 0; rep < 4; ++rep) {
      Rng r = rng.split(rep);
      auto init = workload(g, k, r);
      with.add(static_cast<double>(
          run_collection(g, tree, init, CollectionConfig::for_graph(g),
                         r.next())
              .slots));
      CollectionConfig cfg = CollectionConfig::for_graph(g);
      cfg.slots.mod3_gating = false;
      without.add(static_cast<double>(
          run_collection(g, tree, init, cfg, r.next()).slots));
    }
    Table t({"variant", "slots", "factor"});
    t.row({"mod3 on", num(with.mean(), 0), num(with.mean() / without.mean(), 2)});
    t.row({"mod3 off", num(without.mean(), 0), "1.00"});
    verdict(with.mean() / without.mean() < 3.2,
            "observed slow-down at most the paper's x3 (often less: gated "
            "phases waste fewer transmissions on cross-level collisions)");
  }

  header("E12b: acknowledgement subslots (§3)",
         "acks halve the data rate (x2 slots) but make every hop loss-free");
  {
    // Correctness requires acks; the x2 is structural. We surface it by
    // counting data opportunities per phase with and without ack subslots.
    SlotStructure with_acks;
    with_acks.decay_len = decay_length(g.max_degree());
    SlotStructure no_acks = with_acks;
    no_acks.ack_subslots = false;
    PhaseClock cw(with_acks), cn(no_acks);
    Table t({"variant", "slots/phase"});
    t.row({"acks on", num(std::uint64_t(cw.slots_per_phase()))});
    t.row({"acks off", num(std::uint64_t(cn.slots_per_phase()))});
    verdict(cw.slots_per_phase() == 2 * cn.slots_per_phase(),
            "exactly the paper's factor 2");
  }

  header("E12c: separate channels vs time multiplexing (§1.4)",
         "odd/even multiplexing halves each subprotocol's rate: ~2x slots");
  {
    OnlineStats sep, tdm;
    for (int rep = 0; rep < 3; ++rep) {
      Rng r = rng.split(100 + rep);
      std::vector<NodeId> sources;
      for (int i = 0; i < 32; ++i)
        sources.push_back(static_cast<NodeId>(r.next_below(g.num_nodes())));
      BroadcastServiceConfig c1 = BroadcastServiceConfig::for_graph(g);
      sep.add(static_cast<double>(
          run_k_broadcast(g, tree, sources, c1, r.next()).slots));
      BroadcastServiceConfig c2 = BroadcastServiceConfig::for_graph(g);
      c2.mode = BroadcastServiceConfig::ChannelMode::kTimeDivision;
      tdm.add(static_cast<double>(
          run_k_broadcast(g, tree, sources, c2, r.next()).slots));
    }
    Table t({"variant", "slots", "factor"});
    t.row({"separate ch", num(sep.mean(), 0), "1.00"});
    t.row({"time division", num(tdm.mean(), 0), num(tdm.mean() / sep.mean(), 2)});
    verdict(tdm.mean() / sep.mean() > 1.3 && tdm.mean() / sep.mean() < 3.0,
            "multiplexing costs about the expected factor 2");
  }

  header("E12d: Decay length under high fan-in",
         "Decay must survive log2(Delta) halvings to isolate one of Delta "
         "contenders: short invocations collapse on a star, overlong ones "
         "waste slots linearly; 2 ceil(log2 Delta) is near the knee");
  {
    // 64 leaves all contending for the hub: the worst case Decay's
    // 2 log2(Delta) length is designed for. (On low-degree graphs like the
    // grid, shorter invocations win — the length is a worst-case choice.)
    const Graph star = gen::star(65);
    const BfsTree stree = oracle_bfs_tree(star, 0);
    const std::uint32_t base = decay_length(star.max_degree());  // 12
    // A too-short Decay essentially never isolates one of 64 contenders
    // (success ~ 32 * 2^-32 per phase for len = 2), so cap the runs and
    // report the cap as "did not finish" — which is itself the result.
    const SlotTime cap = 300'000;
    Table t({"decay_len", "collection slots"});
    double best = 1e18, at_base = 0;
    for (std::uint32_t len : {2u, 4u, 8u, base, 2 * base, 4 * base}) {
      OnlineStats s;
      bool finished = true;
      for (int rep = 0; rep < 3; ++rep) {
        Rng r = rng.split(200 + len * 10 + rep);
        std::vector<Message> init;
        for (NodeId v = 1; v < star.num_nodes(); ++v) {
          Message m;
          m.kind = MsgKind::kData;
          m.origin = v;
          init.push_back(m);
        }
        CollectionConfig cfg = CollectionConfig::for_graph(star);
        cfg.slots.decay_len = len;
        const auto out = run_collection(star, stree, init, cfg, r.next(), cap);
        finished = finished && out.completed;
        s.add(static_cast<double>(out.slots));
      }
      if (len == base) at_base = s.mean();
      best = std::min(best, s.mean());
      t.row({num(std::uint64_t(len)),
             finished ? num(s.mean(), 0)
                      : (">" + num(std::uint64_t(cap)) + " (DNF)")});
    }
    verdict(at_base < 1.6 * best,
            "the paper's 2 log2(Delta) sits within 60% of the empirical "
            "best under Delta-way contention");
  }
  return 0;
}
