// Micro-benchmarks for the simulation substrate itself: how fast the
// engine, Decay, the queueing models and the RNG run. These are
// engineering numbers (simulator throughput), not paper claims — the
// output feeds the perf trajectory, not the reproduction tables.
//
// Self-measured on support/stopwatch.h (no external benchmark harness):
// each case is warmed up once, then run in doubling batches until it has
// accumulated --min-time-ms of wall time; the rate is total work over
// total measured time. Results land in BENCH_ENGINE.json (radiomc.bench/v1
// via bench::JsonEmitter) keyed by case/topology/workload/n so
// radiomc_perf can diff runs row-by-row against bench/BASELINE_ENGINE.json.
//
//   bench_micro [--min-time-ms N] [--jobs N]
//
// --min-time-ms defaults to 100; CI passes a reduced budget. --jobs is
// accepted for harness uniformity and recorded in the run info (the
// measurement loops themselves are single-threaded on purpose: rates from
// a contended pool would gate on scheduler noise, not engine speed).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "common.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/collection.h"
#include "protocols/decay.h"
#include "protocols/tree.h"
#include "queueing/models.h"
#include "queueing/tandem.h"
#include "radio/network.h"
#include "support/rng.h"
#include "support/stopwatch.h"

namespace radiomc {
namespace {

/// Keeps `v` alive past the optimizer so measured loops are not folded
/// away (the moral equivalent of benchmark::DoNotOptimize).
template <typename T>
inline void keep(const T& v) {
  asm volatile("" : : "r"(&v) : "memory");
}

/// One measured case: total work units and the wall time they took.
struct Measurement {
  std::uint64_t units = 0;
  std::uint64_t wall_ns = 0;

  double per_sec() const {
    return wall_ns == 0
               ? 0.0
               : static_cast<double>(units) * 1e9 /
                     static_cast<double>(wall_ns);
  }
};

/// Runs `body(batch)` — which must perform `batch` units of work — in
/// doubling batches until `min_time_ms` of wall time has accumulated.
/// One untimed warm-up batch absorbs cold caches and lazy allocation.
template <typename F>
Measurement measure(double min_time_ms, F&& body) {
  const std::uint64_t budget_ns =
      static_cast<std::uint64_t>(min_time_ms * 1e6);
  body(std::uint64_t{1});  // warm-up, untimed
  Measurement m;
  std::uint64_t batch = 1;
  while (m.wall_ns < budget_ns) {
    Stopwatch sw;
    body(batch);
    m.wall_ns += sw.elapsed_ns();
    m.units += batch;
    if (batch < (1ULL << 20)) batch *= 2;
  }
  return m;
}

/// Engine slot throughput with all nodes idle. Opts into autosleep, so
/// after the first slot the whole population is descheduled and each slot
/// costs O(active) ~ O(1) — this is the workload the active-set rewrite
/// exists for, and the row the perf gate watches for the speedup.
class IdleStation final : public Station {
 public:
  void on_attach(Waker& w) override { w.set_autosleep(true); }
  void on_slot(SlotTime, std::span<std::optional<Message>>) override {}
  void on_receive(SlotTime, ChannelId, const Message&) override {}
};

/// Engine slot throughput with every node transmitting (dense
/// superposition: every slot is a collision storm).
class ChattyStation final : public Station {
 public:
  void on_slot(SlotTime, std::span<std::optional<Message>> tx) override {
    tx[0] = Message{};
  }
  void on_receive(SlotTime, ChannelId, const Message&) override {}
};

Graph make_topology(const std::string& topology, NodeId n) {
  if (topology == "grid") {
    NodeId side = 1;
    while (side * side < n) ++side;
    return gen::grid(side, side);
  }
  Rng rng(0x9E3779B97F4A7C15ULL ^ n);
  if (topology == "gnp_sparse") {
    // O(n + m) skip sampler, not conditioned on connectivity — the engine
    // doesn't care, and the O(n^2) sweep below cannot reach n = 10^6.
    return gen::gnp_fast(n, 8.0 / static_cast<double>(n), rng);
  }
  if (topology == "udg") {
    // Bucket-grid unit-disk sampler at a degree-targeted radius (expected
    // degree ~12; the connectivity radius would be far denser at 10^6).
    return gen::unit_disk_fast(n, gen::udg_degree_radius(n, 12.0), rng);
  }
  // Edge probability scaled so expected degree stays ~8 across sizes
  // instead of a fixed p making the larger graph much denser.
  const double p = 8.0 / static_cast<double>(n);
  return gen::gnp_connected(n, p, rng);
}

/// One engine-sweep cell: step a network of `workload` stations on
/// `topology` with ~n nodes and record slots/sec and node-slots/sec.
template <typename StationT>
void engine_case(const std::string& topology, NodeId n,
                 const std::string& workload, double min_time_ms,
                 bench::Table* table, bench::JsonEmitter* json) {
  const Graph g = make_topology(topology, n);
  std::deque<StationT> st(g.num_nodes());
  std::vector<Station*> ptrs;
  for (auto& s : st) ptrs.push_back(&s);
  RadioNetwork net(g);
  net.attach(std::move(ptrs));

  const Measurement m = measure(min_time_ms, [&](std::uint64_t batch) {
    for (std::uint64_t i = 0; i < batch; ++i) net.step();
    keep(net.now());
  });

  const double slots_per_sec = m.per_sec();
  const double node_slots_per_sec =
      slots_per_sec * static_cast<double>(g.num_nodes());
  table->row({topology, workload,
              bench::num(static_cast<std::uint64_t>(g.num_nodes())),
              bench::num(m.units), bench::num(slots_per_sec, 0),
              bench::num(node_slots_per_sec, 0)});
  json->row({{"case", "engine_slots"},
             {"topology", topology},
             {"workload", workload},
             {"n", static_cast<int>(g.num_nodes())},
             {"slots", m.units},
             {"slots_per_sec", slots_per_sec},
             {"node_slots_per_sec", node_slots_per_sec}});
}

/// Idle-heavy mixed cell: one permanently-active transmitter per 256
/// stations (legacy, never touches its Waker), everyone else an autosleep
/// IdleStation. Per-slot cost tracks the chatty 1/256th of the population —
/// the shape of a large network where almost everything is quiet.
void engine_sparse_case(const std::string& topology, NodeId n,
                        double min_time_ms, bench::Table* table,
                        bench::JsonEmitter* json) {
  const Graph g = make_topology(topology, n);
  std::deque<IdleStation> idle;
  std::deque<ChattyStation> chatty;
  std::vector<Station*> ptrs;
  ptrs.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v % 256 == 0) {
      chatty.emplace_back();
      ptrs.push_back(&chatty.back());
    } else {
      idle.emplace_back();
      ptrs.push_back(&idle.back());
    }
  }
  RadioNetwork net(g);
  net.attach(std::move(ptrs));

  const Measurement m = measure(min_time_ms, [&](std::uint64_t batch) {
    for (std::uint64_t i = 0; i < batch; ++i) net.step();
    keep(net.now());
  });

  const double slots_per_sec = m.per_sec();
  const double node_slots_per_sec =
      slots_per_sec * static_cast<double>(g.num_nodes());
  table->row({topology, "sparse",
              bench::num(static_cast<std::uint64_t>(g.num_nodes())),
              bench::num(m.units), bench::num(slots_per_sec, 0),
              bench::num(node_slots_per_sec, 0)});
  json->row({{"case", "engine_slots"},
             {"topology", topology},
             {"workload", "sparse"},
             {"n", static_cast<int>(g.num_nodes())},
             {"slots", m.units},
             {"slots_per_sec", slots_per_sec},
             {"node_slots_per_sec", node_slots_per_sec}});
}

/// One micro case; `body(batch)` performs `batch` operations. `n <= 0`
/// means the case has no size parameter (and gets no "n" member, keeping
/// the row key stable for radiomc_perf).
template <typename F>
void micro_case(const std::string& name, int n, double min_time_ms,
                bench::Table* table, bench::JsonEmitter* json, F&& body) {
  const Measurement m = measure(min_time_ms, body);
  const double ops_per_sec = m.per_sec();
  table->row({name, n > 0 ? bench::num(std::uint64_t(n)) : "-",
              bench::num(m.units), bench::num(ops_per_sec, 0)});
  if (n > 0) {
    json->row({{"case", name},
               {"n", n},
               {"ops", m.units},
               {"ops_per_sec", ops_per_sec}});
  } else {
    json->row(
        {{"case", name}, {"ops", m.units}, {"ops_per_sec", ops_per_sec}});
  }
}

int run(int argc, char** argv) {
  const bench::Options opt = bench::parse_options(argc, argv);
  double min_time_ms = 100.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-time-ms") == 0 && i + 1 < argc)
      min_time_ms = std::strtod(argv[++i], nullptr);
  }
  if (min_time_ms <= 0.0) min_time_ms = 1.0;

  const Stopwatch total;
  const std::uint64_t cpu0 = process_cpu_ns();

  bench::header("ENGINE",
                "simulator throughput trajectory (engineering numbers, "
                "not a paper claim)");
  std::printf("   min-time per case: %.0f ms\n", min_time_ms);
  bench::JsonEmitter json(
      "ENGINE",
      "simulator throughput trajectory (engineering numbers, not a paper "
      "claim)");

  // --- engine sweep: topology x size x workload --------------------------
  bench::Table engine({"topology", "workload", "n", "slots", "slots/s",
                       "node-slots/s"});
  for (const char* topology : {"grid", "gnp"}) {
    for (NodeId n : {NodeId{256}, NodeId{1024}}) {
      engine_case<IdleStation>(topology, n, "idle", min_time_ms, &engine,
                               &json);
      engine_case<ChattyStation>(topology, n, "busy", min_time_ms, &engine,
                                 &json);
      engine_sparse_case(topology, n, min_time_ms, &engine, &json);
    }
  }
  // Million-node cells (O(n + m) samplers; the engine only ever touches
  // the stations that are doing something, which is what makes these rows
  // runnable at all). "busy" is deliberately absent at this size: a
  // 10^6-transmitter collision storm measures memory bandwidth, not the
  // scheduler.
  for (const char* topology : {"gnp_sparse", "udg"}) {
    const NodeId big = 1000000;
    engine_case<IdleStation>(topology, big, "idle", min_time_ms, &engine,
                             &json);
    engine_sparse_case(topology, big, min_time_ms, &engine, &json);
  }
  engine.print();

  // --- substrate micro-benchmarks ----------------------------------------
  std::printf("\n");
  bench::Table micro({"case", "n", "ops", "ops/s"});

  {
    Rng rng(1);
    micro_case("rng_next", 0, min_time_ms, &micro, &json,
               [&](std::uint64_t batch) {
                 std::uint64_t acc = 0;
                 for (std::uint64_t i = 0; i < batch; ++i) acc ^= rng.next();
                 keep(acc);
               });
  }
  {
    Rng rng(2);
    micro_case("rng_bernoulli", 0, min_time_ms, &micro, &json,
               [&](std::uint64_t batch) {
                 std::uint64_t acc = 0;
                 for (std::uint64_t i = 0; i < batch; ++i)
                   acc += rng.bernoulli(0.3) ? 1 : 0;
                 keep(acc);
               });
  }
  {
    const Graph g = gen::star(33);
    Rng rng(3);
    std::vector<NodeId> tx;
    for (NodeId v = 1; v < 33; ++v) tx.push_back(v);
    micro_case("decay_invocation", 0, min_time_ms, &micro, &json,
               [&](std::uint64_t batch) {
                 for (std::uint64_t i = 0; i < batch; ++i) {
                   const auto r = decay_single_trial(g, 0, tx, 10, rng);
                   keep(r);
                 }
               });
  }
  {
    const Graph g = gen::grid(5, 5);
    const BfsTree tree = oracle_bfs_tree(g, 0);
    Rng rng(4);
    micro_case("collection_full_run", 0, min_time_ms, &micro, &json,
               [&](std::uint64_t batch) {
                 for (std::uint64_t i = 0; i < batch; ++i) {
                   std::vector<Message> init;
                   for (NodeId v = 1; v < g.num_nodes(); ++v) {
                     Message msg;
                     msg.kind = MsgKind::kData;
                     msg.origin = v;
                     init.push_back(msg);
                   }
                   const auto out = run_collection(
                       g, tree, init, CollectionConfig::for_graph(g),
                       rng.next());
                   keep(out);
                 }
               });
  }
  for (int stages : {8, 64}) {
    Rng rng(5);
    queueing::TandemQueue q(static_cast<std::uint32_t>(stages), 0.25,
                            rng.split(1));
    micro_case("tandem_step", stages, min_time_ms, &micro, &json,
               [&](std::uint64_t batch) {
                 for (std::uint64_t i = 0; i < batch; ++i) {
                   const auto s = q.step(0.2);
                   keep(s);
                 }
               });
  }
  {
    Rng rng(6);
    micro_case("model4_completion", 0, min_time_ms, &micro, &json,
               [&](std::uint64_t batch) {
                 for (std::uint64_t i = 0; i < batch; ++i) {
                   const auto r =
                       queueing::run_model4(64, 16, 0.25, 0.12, rng);
                   keep(r);
                 }
               });
  }
  for (NodeId side : {NodeId{16}, NodeId{64}}) {
    const Graph g = gen::grid(side, side);
    micro_case("oracle_bfs", static_cast<int>(side), min_time_ms, &micro,
               &json, [&](std::uint64_t batch) {
                 for (std::uint64_t i = 0; i < batch; ++i) {
                   const BfsTree t = oracle_bfs_tree(g, 0);
                   keep(t);
                 }
               });
  }
  {
    Rng rng(7);
    const Graph g = gen::gnp_connected(256, 0.05, rng);
    NodeId v = 0;
    micro_case("neighbor_iteration", 0, min_time_ms, &micro, &json,
               [&](std::uint64_t batch) {
                 std::uint64_t acc = 0;
                 for (std::uint64_t i = 0; i < batch; ++i) {
                   for (NodeId u : g.neighbors(v)) acc += u;
                   v = (v + 1) % g.num_nodes();
                 }
                 keep(acc);
               });
  }
  micro.print();

  const double cpu_ms = static_cast<double>(process_cpu_ns() - cpu0) / 1e6;
  json.set_run_info(opt.jobs, total.elapsed_ms(), cpu_ms);
  json.write();
  return 0;
}

}  // namespace
}  // namespace radiomc

int main(int argc, char** argv) { return radiomc::run(argc, argv); }
