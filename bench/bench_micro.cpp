// Micro-benchmarks (google-benchmark) for the simulation substrate itself:
// how fast the engine, Decay, the queueing models and the RNG run. These
// are engineering numbers (simulator throughput), not paper claims.

#include <benchmark/benchmark.h>

#include <deque>
#include <memory>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/collection.h"
#include "protocols/decay.h"
#include "protocols/tree.h"
#include "queueing/models.h"
#include "queueing/tandem.h"
#include "radio/network.h"
#include "support/rng.h"

namespace radiomc {
namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_RngBernoulli(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(rng.bernoulli(0.3));
}
BENCHMARK(BM_RngBernoulli);

/// Engine slot throughput with all nodes idle (pure dispatch overhead).
class IdleStation final : public Station {
 public:
  void on_slot(SlotTime, std::span<std::optional<Message>>) override {}
  void on_receive(SlotTime, ChannelId, const Message&) override {}
};

void BM_EngineIdleSlot(benchmark::State& state) {
  const Graph g = gen::grid(static_cast<NodeId>(state.range(0)),
                            static_cast<NodeId>(state.range(0)));
  std::deque<IdleStation> st(g.num_nodes());
  std::vector<Station*> ptrs;
  for (auto& s : st) ptrs.push_back(&s);
  RadioNetwork net(g);
  net.attach(std::move(ptrs));
  for (auto _ : state) net.step();
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_EngineIdleSlot)->Arg(8)->Arg(16)->Arg(32);

/// Engine slot throughput with every node transmitting (dense superposition).
class ChattyStation final : public Station {
 public:
  void on_slot(SlotTime, std::span<std::optional<Message>> tx) override {
    tx[0] = Message{};
  }
  void on_receive(SlotTime, ChannelId, const Message&) override {}
};

void BM_EngineBusySlot(benchmark::State& state) {
  const Graph g = gen::grid(static_cast<NodeId>(state.range(0)),
                            static_cast<NodeId>(state.range(0)));
  std::deque<ChattyStation> st(g.num_nodes());
  std::vector<Station*> ptrs;
  for (auto& s : st) ptrs.push_back(&s);
  RadioNetwork net(g);
  net.attach(std::move(ptrs));
  for (auto _ : state) net.step();
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_EngineBusySlot)->Arg(8)->Arg(16)->Arg(32);

void BM_DecayInvocation(benchmark::State& state) {
  const Graph g = gen::star(33);
  Rng rng(3);
  std::vector<NodeId> tx;
  for (NodeId v = 1; v < 33; ++v) tx.push_back(v);
  for (auto _ : state)
    benchmark::DoNotOptimize(decay_single_trial(g, 0, tx, 10, rng));
}
BENCHMARK(BM_DecayInvocation);

void BM_CollectionFullRun(benchmark::State& state) {
  const Graph g = gen::grid(5, 5);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  Rng rng(4);
  for (auto _ : state) {
    std::vector<Message> init;
    for (NodeId v = 1; v < g.num_nodes(); ++v) {
      Message m;
      m.kind = MsgKind::kData;
      m.origin = v;
      init.push_back(m);
    }
    benchmark::DoNotOptimize(
        run_collection(g, tree, init, CollectionConfig::for_graph(g),
                       rng.next()));
  }
}
BENCHMARK(BM_CollectionFullRun);

void BM_TandemStep(benchmark::State& state) {
  Rng rng(5);
  queueing::TandemQueue q(static_cast<std::uint32_t>(state.range(0)), 0.25,
                          rng.split(1));
  for (auto _ : state) benchmark::DoNotOptimize(q.step(0.2));
}
BENCHMARK(BM_TandemStep)->Arg(8)->Arg(64);

void BM_Model4Completion(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        queueing::run_model4(64, 16, 0.25, 0.12, rng));
}
BENCHMARK(BM_Model4Completion);

void BM_OracleBfs(benchmark::State& state) {
  const Graph g = gen::grid(static_cast<NodeId>(state.range(0)),
                            static_cast<NodeId>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(oracle_bfs_tree(g, 0));
}
BENCHMARK(BM_OracleBfs)->Arg(16)->Arg(64);

void BM_GraphNeighborIteration(benchmark::State& state) {
  Rng rng(7);
  const Graph g = gen::gnp_connected(256, 0.05, rng);
  NodeId v = 0;
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (NodeId u : g.neighbors(v)) acc += u;
    benchmark::DoNotOptimize(acc);
    v = (v + 1) % g.num_nodes();
  }
}
BENCHMARK(BM_GraphNeighborIteration);

}  // namespace
}  // namespace radiomc

BENCHMARK_MAIN();
