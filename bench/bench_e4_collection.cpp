// E4 — §4 / Theorem 4.4:
//   "k point-to-point transmissions require O((k + D) log Delta) time on
//    the average. ... The expected number of time slots for k messages to
//    reach the root is bounded by 32.27 (k + D) log Delta."
//
// Sweep k on a fixed topology; report measured slots against the explicit
// 32.27 (k+D) log2(Delta) bound. The paper folds the §2.2 mod-3 gating
// factor (x3) out of its constant, so the gated and ungated runs are both
// shown; the ungated run must sit under the paper's own constant, the
// gated run under 3x it. The marginal column exhibits §4's throughput
// claim: a new message every O(log Delta) slots.
//
// Trials shard across --jobs threads (support/parallel.h); per-trial
// streams are derived serially in (k, rep) order, so every statistic is
// byte-identical whatever the job count.

#include <sstream>
#include <vector>

#include "analysis/conformance.h"
#include "analysis/lifecycle.h"
#include "analysis/trace_reader.h"
#include "common.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/collection.h"
#include "protocols/tree.h"
#include "queueing/analysis.h"
#include "support/rng.h"
#include "telemetry/jsonl_sink.h"

using namespace radiomc;
using namespace radiomc::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  RunTimer timer;
  header("E4: k-message collection vs Theorem 4.4",
         "E[slots] <= 32.27 (k+D) log2(Delta); marginal cost O(log Delta) "
         "per message");

  const Graph g = gen::grid(8, 8);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const std::uint32_t d = tree.depth;
  Rng rng(0xE4);

  auto workload = [&](std::uint64_t k, Rng& r) {
    std::vector<Message> init;
    for (std::uint64_t i = 0; i < k; ++i) {
      Message m;
      m.kind = MsgKind::kData;
      m.origin = static_cast<NodeId>(1 + r.next_below(g.num_nodes() - 1));
      m.seq = static_cast<std::uint32_t>(i);
      init.push_back(m);
    }
    return init;
  };

  const std::vector<std::uint64_t> ks = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  constexpr int kReps = 3;
  // One stream per (k, rep), split off in the order the serial loop used.
  std::vector<Rng> streams;
  streams.reserve(ks.size() * kReps);
  for (std::uint64_t k : ks)
    for (int rep = 0; rep < kReps; ++rep)
      streams.push_back(rng.split(k * 10 + rep));

  struct Trial {
    double gated = 0, plain = 0;
  };
  const auto trials =
      run_indexed(streams.size(), opt.jobs, [&](std::uint64_t i) {
        const std::uint64_t k = ks[i / kReps];
        Rng r = streams[i];
        auto init = workload(k, r);
        Trial out;
        out.gated = static_cast<double>(
            run_collection(g, tree, init, CollectionConfig::for_graph(g),
                           r.next())
                .slots);
        CollectionConfig cfg = CollectionConfig::for_graph(g);
        cfg.slots.mod3_gating = false;
        out.plain = static_cast<double>(
            run_collection(g, tree, init, cfg, r.next()).slots);
        return out;
      });

  Table t({"k", "slots(mod3)", "slots(plain)", "bound", "plain/bound",
           "mod3/3bound", "marginal/msg"});
  JsonEmitter json("E4",
                   "E[slots] <= 32.27 (k+D) log2(Delta); marginal cost "
                   "O(log Delta) per message");
  bool ok = true;
  double prev_plain = 0;
  std::uint64_t prev_k = 0;
  for (std::size_t ki = 0; ki < ks.size(); ++ki) {
    const std::uint64_t k = ks[ki];
    OnlineStats gated, plain;
    for (int rep = 0; rep < kReps; ++rep) {
      const Trial& tr = trials[ki * kReps + rep];
      gated.add(tr.gated);
      plain.add(tr.plain);
    }
    const double bound = queueing::thm44_slot_bound(k, d, g.max_degree());
    const double marginal =
        prev_k ? (plain.mean() - prev_plain) / static_cast<double>(k - prev_k)
               : 0.0;
    ok = ok && plain.mean() <= bound && gated.mean() <= 3 * bound;
    t.row({num(k), num(gated.mean(), 0), num(plain.mean(), 0), num(bound, 0),
           num(plain.mean() / bound, 2), num(gated.mean() / (3 * bound), 2),
           prev_k ? num(marginal, 1) : std::string("-")});
    json.row({{"k", k},
              {"slots_mod3_mean", gated.mean()},
              {"slots_plain_mean", plain.mean()},
              {"thm44_bound", bound},
              {"plain_over_bound", plain.mean() / bound},
              {"mod3_over_3bound", gated.mean() / (3 * bound)},
              {"marginal_slots_per_msg", marginal}});
    prev_plain = plain.mean();
    prev_k = k;
  }
  t.print();

  // Conformance audit: replay one traced gated run through the offline
  // auditor (src/analysis), so every E4 invocation also asserts Thm 3.1
  // ack certainty, Thm 4.1's advance rate and exactly-once delivery on
  // the exact event stream the engine produced.
  bool audit_ok = false;
  {
    std::ostringstream trace_buf;
    telemetry::JsonlTraceSink sink(trace_buf);
    CollectionConfig cfg = CollectionConfig::for_graph(g);
    sink.set_protocol("collection");
    sink.set_slot_structure(cfg.slots);
    sink.set_levels(tree.level);
    cfg.trace = &sink;
    Rng ar = rng.split(999);
    auto init = workload(32, ar);
    run_collection(g, tree, init, cfg, ar.next());
    sink.finish();
    std::istringstream in(trace_buf.str());
    const analysis::TraceReadResult read = analysis::read_trace(in);
    std::string detail = read.ok ? "" : read.error;
    if (read.ok) {
      const auto flights = analysis::build_lifecycles(read.trace);
      const analysis::AuditReport audit =
          analysis::audit_trace(read.trace, flights);
      audit_ok = audit.pass;
      for (const analysis::CheckResult& c : audit.checks) {
        json.row({{"audit_check", c.id},
                  {"status", c.status == analysis::CheckStatus::kPass
                                 ? "pass"
                                 : c.status == analysis::CheckStatus::kFail
                                       ? "fail"
                                       : "skip"},
                  {"detail", c.detail}});
        if (c.status == analysis::CheckStatus::kFail)
          detail += (detail.empty() ? "" : "; ") + c.id + ": " + c.detail;
      }
    }
    verdict(audit_ok,
            "traced k=32 run passes the radiomc_trace conformance audit" +
                (detail.empty() ? std::string() : " (" + detail + ")"));
  }
  ok = ok && audit_ok;

  verdict(ok, "measured completion sits under Theorem 4.4's constant");
  json.pass(ok);
  json.set_run_info(opt.jobs, timer.wall_ms(), timer.cpu_ms());
  std::printf(
      "   note: D = %u, Delta = %u, log2(Delta) = 2; a marginal cost of a "
      "few slots per message IS the 'new transmission every O(log Delta) "
      "slots' claim.\n",
      d, g.max_degree());
  return 0;
}
