// E17 — continuous-traffic service soaks (the `radiomc_sim serve` mode,
// src/service/): §4 collection run as a long-lived open-loop server under
// three arrival regimes, judged by the radiomc.soak/v1 certification
// against the Theorem 4.15 closed forms.
//
//  * stable cells (offered load < mu, Bernoulli and bursty MMPP) must
//    certify clean: sustained throughput >= (1-margin) lambda, mean
//    sojourn within 3x the tandem closed form, exactly-once, bounded
//    queues;
//  * an overloaded cell (poisson past mu into one contended level) must
//    FAIL certification while shed-mode admission control keeps every
//    queue within its Hsu-Burke envelope — degraded but bounded;
//  * a crash-churn cell must stay exactly-once through fault epochs
//    (the Remark 3 dedup guard) while still delivering.
//
// Cells shard across --jobs threads; seeds are drawn serially in loop
// order so every cell is job-count independent.

#include <sstream>
#include <vector>

#include "common.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "health/monitor.h"
#include "protocols/tree.h"
#include "queueing/analysis.h"
#include "service/certify.h"
#include "service/service.h"
#include "support/rng.h"

using namespace radiomc;
using namespace radiomc::bench;

namespace svc = radiomc::service;

namespace {

enum class Expect { kCertifies, kOverloadBounded, kChurnExactlyOnce };

struct Cell {
  const char* name;
  Graph g;
  svc::ServeConfig cfg;
  Expect expect;
  std::uint64_t seed = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  RunTimer timer;
  header("E17: continuous service soaks under the soak/v1 certification",
         "stable loads certify against the Thm 4.15 closed forms; overload "
         "fails but admission control keeps queues inside the Hsu-Burke "
         "envelope; crash churn stays exactly-once");

  const double mu = queueing::mu_decay();
  Rng rng(0xE17);

  const auto base = [&](const char* arrival) {
    svc::ServeConfig cfg;
    cfg.arrival = svc::ArrivalSpec::parse(arrival);
    cfg.phases = 12'000;
    cfg.warmup_phases = 1'500;
    return cfg;
  };

  std::vector<Cell> cells;
  {
    Cell c{"grid6x6 bernoulli 0.5mu", gen::grid(6, 6),
           base("bernoulli:0.5"), Expect::kCertifies};
    c.cfg.arrival.rate = 0.5 * mu;
    cells.push_back(std::move(c));
  }
  // Bursty: mean 0.116 ~ 0.5 mu, but the on state offers 0.5/phase —
  // transient overload the network must absorb between bursts.
  cells.push_back({"grid6x6 mmpp bursty", gen::grid(6, 6),
                   base("mmpp:0.02:0.5:0.05:0.2"), Expect::kCertifies});
  {
    Cell c{"star24 poisson 0.8 + shed", gen::star(24),
           base("poisson:0.8"), Expect::kOverloadBounded};
    c.cfg.admission.policy = svc::AdmissionPolicy::kShed;
    c.cfg.admission.envelope_multiple = 1.0;
    cells.push_back(std::move(c));
  }
  {
    Cell c{"grid6x6 0.5mu + crash churn", gen::grid(6, 6),
           base("bernoulli:0.5"), Expect::kChurnExactlyOnce};
    c.cfg.arrival.rate = 0.5 * mu;
    c.cfg.faults.crash_rate = 0.01;
    c.cfg.faults.recover_rate = 0.3;
    c.cfg.faults.drop_prob = 0.01;
    c.cfg.faults.epoch_slots = 1024;
    cells.push_back(std::move(c));
  }
  for (Cell& c : cells) c.seed = rng.next();

  // Every cell also runs under the online health monitor (src/health/):
  // the default SLO battery over 256-phase windows. A stable cell must
  // stay alert-free for the whole soak; the overloaded cell must trip —
  // the alert engine is judged against the certification verdict it is
  // meant to predict.
  struct CellOutcome {
    svc::SoakVerdict v;
    std::uint64_t trips = 0;
    std::uint64_t active = 0;
  };
  const auto outs = run_indexed(cells.size(), opt.jobs, [&](std::uint64_t i) {
    Cell& c = cells[i];
    const BfsTree tree = oracle_bfs_tree(c.g, 0);
    health::HealthConfig hcfg;
    hcfg.window_phases = 256;
    hcfg.offered_rate = c.cfg.arrival.mean_rate();
    hcfg.depth = tree.depth;
    hcfg.warmup_phases = c.cfg.warmup_phases;
    std::ostringstream sink;
    health::Monitor mon(c.g.num_nodes(), tree.level, hcfg, sink);
    c.cfg.health = &mon;
    const svc::ServeOutcome out = svc::run_service(c.g, tree, c.cfg, c.seed);
    mon.finish();
    CellOutcome co;
    co.v = svc::certify_soak(out, c.cfg.arrival.mean_rate(), mu, tree.depth,
                             svc::CertifyConfig{});
    co.trips = mon.trips();
    co.active = mon.active();
    return co;
  });

  JsonEmitter json("E17",
                   "service soaks: stable certifies, overload sheds "
                   "bounded, churn stays exactly-once");
  Table t({"cell", "lambda", "delivered/ph", "sojourn(ph)", "peak depth",
           "trips", "active", "verdict", "as expected"});
  bool ok = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const svc::SoakVerdict& v = outs[i].v;
    bool cell_ok = false;
    const char* expect_name = "";
    switch (c.expect) {
      case Expect::kCertifies:
        // A certifying cell must also be alert-free: the online monitor
        // and the offline certification must agree on health.
        expect_name = "certifies";
        cell_ok = v.pass && outs[i].trips == 0;
        break;
      case Expect::kOverloadBounded:
        // ... and an overloaded cell must have tripped at least one rule
        // online before the offline verdict said FAIL.
        expect_name = "fails, bounded";
        cell_ok = !v.pass && v.shed > 0 &&
                  static_cast<double>(v.peak_level_depth) <=
                      v.queue_bound + 1.0 &&
                  outs[i].trips > 0;
        break;
      case Expect::kChurnExactlyOnce:
        expect_name = "exactly-once";
        cell_ok = v.exactly_once_ok && v.delivered > 0;
        break;
    }
    ok = ok && cell_ok;
    t.row({c.name, num(v.offered_rate, 3), num(v.delivered_rate, 3),
           num(v.sojourn_mean, 2), num(static_cast<double>(v.peak_level_depth), 0),
           num(static_cast<double>(outs[i].trips), 0),
           num(static_cast<double>(outs[i].active), 0),
           v.pass ? "PASS" : "fail", cell_ok ? "yes" : "NO"});
    json.row({{"cell", c.name},
              {"expect", expect_name},
              {"offered_rate", v.offered_rate},
              {"delivered_rate", v.delivered_rate},
              {"sojourn_mean_phases", v.sojourn_mean},
              {"sojourn_bound_phases", v.sojourn_bound},
              {"peak_level_depth", static_cast<double>(v.peak_level_depth)},
              {"queue_bound", v.queue_bound},
              {"shed", static_cast<double>(v.shed)},
              {"duplicates", static_cast<double>(v.duplicates)},
              {"alert_trips", static_cast<double>(outs[i].trips)},
              {"alerts_active", static_cast<double>(outs[i].active)},
              {"certified", v.pass},
              {"as_expected", cell_ok}});
  }
  t.print();
  verdict(ok,
          "the service holds its contract in every regime: certification "
          "tracks the closed forms, admission control bounds overload, the "
          "dedup guard keeps churn exactly-once");
  json.pass(ok);
  json.set_run_info(opt.jobs, timer.wall_ms(), timer.cpu_ms());
  return 0;
}
