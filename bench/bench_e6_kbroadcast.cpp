// E6 — §6 k-broadcast:
//   "k broadcasts require an average of O((k + D) log Delta log n) time.
//    Hence the average throughput of the network is a broadcast every
//    O(log Delta log n) time slots."
//
// Sweep k; report slots, slots normalized by (k+D) log2(Delta) log2(n)
// (flattens), the marginal slots per extra broadcast next to one
// superphase (= the throughput claim), and the repair traffic. The
// (k, rep) runs shard across --jobs threads; streams are split off the
// root in loop order so statistics are job-count independent.

#include <vector>

#include "common.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/broadcast_service.h"
#include "protocols/tree.h"
#include "support/rng.h"
#include "support/util.h"

using namespace radiomc;
using namespace radiomc::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  RunTimer timer;
  header("E6: pipelined k-broadcast",
         "O((k+D) log Delta log n) slots; one broadcast per superphase of "
         "O(log Delta log n) slots once the pipeline fills");

  const Graph g = gen::grid(6, 6);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  Rng rng(0xE6);
  const auto dcfg = DistributionConfig::for_graph(g);
  const double superphase = static_cast<double>(
      dcfg.phases_per_superphase * dcfg.decay_len * 3);
  const double logd = std::max<double>(1, ceil_log2(g.max_degree()));
  const double logn = std::max<double>(1, ceil_log2(g.num_nodes()));

  const std::vector<std::uint64_t> ks = {1, 2, 4, 8, 16, 32, 64, 128};
  constexpr int kReps = 3;
  std::vector<Rng> streams;
  streams.reserve(ks.size() * kReps);
  for (std::uint64_t k : ks)
    for (int rep = 0; rep < kReps; ++rep)
      streams.push_back(rng.split(k * 10 + rep));

  struct Trial {
    bool completed = false;
    double slots = 0, resends = 0;
  };
  const auto trials =
      run_indexed(streams.size(), opt.jobs, [&](std::uint64_t i) {
        const std::uint64_t k = ks[i / kReps];
        Rng r = streams[i];
        std::vector<NodeId> sources;
        for (std::uint64_t j = 0; j < k; ++j)
          sources.push_back(static_cast<NodeId>(r.next_below(g.num_nodes())));
        const auto out = run_k_broadcast(g, tree, sources,
                                         BroadcastServiceConfig::for_graph(g),
                                         r.next());
        Trial tr;
        tr.completed = out.completed;
        if (out.completed) {
          tr.slots = static_cast<double>(out.slots);
          tr.resends = static_cast<double>(out.root_resends);
        }
        return tr;
      });

  Table t({"k", "slots", "norm", "marginal/bcast", "superphase",
           "resends"});
  JsonEmitter json("E6",
                   "O((k+D) log Delta log n) slots; marginal cost per "
                   "broadcast ~ one superphase");
  double prev = 0, first_norm = 0, last_norm = 0, last_marginal = 0;
  std::uint64_t prev_k = 0;
  for (std::size_t ki = 0; ki < ks.size(); ++ki) {
    const std::uint64_t k = ks[ki];
    OnlineStats slots, resends;
    for (int rep = 0; rep < kReps; ++rep) {
      const Trial& tr = trials[ki * kReps + rep];
      if (!tr.completed) continue;
      slots.add(tr.slots);
      resends.add(tr.resends);
    }
    const double norm =
        slots.mean() / (static_cast<double>(k + tree.depth) * logd * logn);
    if (first_norm == 0) first_norm = norm;
    last_norm = norm;
    const double marginal =
        prev_k ? (slots.mean() - prev) / static_cast<double>(k - prev_k) : 0;
    if (prev_k) last_marginal = marginal;
    t.row({num(k), num(slots.mean(), 0), num(norm, 1),
           prev_k ? num(marginal, 1) : std::string("-"), num(superphase, 0),
           num(resends.mean(), 1)});
    json.row({{"k", k},
              {"slots_mean", slots.mean()},
              {"norm", norm},
              {"marginal_slots_per_bcast", marginal},
              {"superphase_slots", superphase},
              {"root_resends_mean", resends.mean()}});
    prev = slots.mean();
    prev_k = k;
  }
  t.print();
  const bool flat = last_norm < 2.0 * first_norm;
  const bool throughput = last_marginal < 3.0 * superphase;
  verdict(flat, "total slots linear in (k+D) log Delta log n");
  verdict(throughput,
          "marginal cost per broadcast ~ one superphase "
          "(the O(log Delta log n) throughput claim)");
  json.pass(flat && throughput);
  json.set_run_info(opt.jobs, timer.wall_ms(), timer.cpu_ms());
  return 0;
}
