// E8 — Theorem 4.15's domination chain (§4.2, Lemmas 4.10-4.15):
//   E[T(model 1)] <= E[T(model 2)] <= E[T(model 3)] <= E[T(model 4)].
//
// Two views:
//  * independent simulations of all four models on the same (k, D) grid —
//    the mean columns (model 1 is the radio network itself, in collection
//    phases);
//  * the paper's own coupling: ONE random move sequence applied to the
//    three initial partitions b <= k <= a (Lemma 4.8 gives the pathwise
//    order T(b) <= T(k) <= T(a) on every draw, no statistical slack).
//
// The 2700 (D, k, rep) trials shard across --jobs threads; streams keep
// the historical tags so means and violation counts match the serial run.

#include <vector>

#include "common.h"
#include "graph/generators.h"
#include "protocols/tree.h"
#include "queueing/analysis.h"
#include "queueing/models.h"
#include "queueing/partition.h"
#include "queueing/tandem.h"
#include "support/rng.h"

using namespace radiomc;
using namespace radiomc::bench;
using namespace radiomc::queueing;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  RunTimer timer;
  header("E8: Theorem 4.15 model chain",
         "E[T1] <= E[T2] <= E[T3] <= E[T4] (phases); coupled runs are "
         "pathwise-ordered");

  Rng rng(0xE8);
  const double mu = mu_decay();
  const double lambda = mu / 2;
  constexpr int kRepsRadio = 12;
  constexpr int kRepsFast = 300;

  const std::vector<std::uint32_t> ds = {6u, 12u, 24u};
  const std::vector<std::uint64_t> ks = {8u, 24u, 64u};
  struct Cell {
    std::uint32_t d;
    std::uint64_t k;
    const Graph* g;
    const BfsTree* tree;
  };
  std::vector<Graph> graphs;
  std::vector<BfsTree> trees;
  graphs.reserve(ds.size());
  trees.reserve(ds.size());
  for (std::uint32_t d : ds) {
    graphs.push_back(gen::path(d + 1));
    trees.push_back(oracle_bfs_tree(graphs.back(), 0));
  }
  std::vector<Cell> cells;
  for (std::size_t di = 0; di < ds.size(); ++di)
    for (std::uint64_t k : ks)
      cells.push_back({ds[di], k, &graphs[di], &trees[di]});

  // Streams in the historical (d, k, rep) order.
  std::vector<Rng> streams;
  streams.reserve(cells.size() * kRepsFast);
  for (const Cell& c : cells)
    for (int rep = 0; rep < kRepsFast; ++rep)
      streams.push_back(rng.split(c.d * 1000 + c.k * 13 + rep));

  struct Trial {
    double m1 = 0, m2 = 0, m3 = 0, m4 = 0;
    bool has_m1 = false;
    bool violation = false;
  };
  const auto trials =
      run_indexed(streams.size(), opt.jobs, [&](std::uint64_t i) {
        const Cell& c = cells[i / kRepsFast];
        const int rep = static_cast<int>(i % kRepsFast);
        const std::uint32_t d = c.d;
        const std::uint64_t k = c.k;
        Rng r = streams[i];
        std::vector<std::uint32_t> levels;
        std::vector<NodeId> sources;
        for (std::uint64_t j = 0; j < k; ++j) {
          const std::uint32_t l =
              static_cast<std::uint32_t>(1 + r.next_below(d));
          levels.push_back(l);
          sources.push_back(static_cast<NodeId>(l));
        }
        Trial out;
        if (rep < kRepsRadio) {
          out.has_m1 = true;
          out.m1 = static_cast<double>(
              run_model1_phases(*c.g, *c.tree, sources, r.next()));
        }
        out.m2 = static_cast<double>(run_model2(levels, d, mu, r));
        out.m3 = static_cast<double>(run_model3(k, d, mu, lambda, r));
        out.m4 = static_cast<double>(run_model4(k, d, mu, lambda, r));

        // Coupled check: identical move sequence, ordered partitions.
        Partition b(d + 1, 0), kk(d + 1, 0), a(d + 1, 0);
        for (std::uint32_t l : levels) ++b[l - 1];
        kk[d] = k;
        for (std::uint32_t j = 0; j < d; ++j)
          a[j] = sample_stationary_queue(lambda, mu, r);
        a[d] = k;
        const std::uint64_t horizon = 60'000;
        const auto ms = random_move_sequence(d + 1, mu, lambda, 4096, r);
        const std::uint64_t tb = completion_time(b, ms, horizon);
        const std::uint64_t tk = completion_time(kk, ms, horizon);
        const std::uint64_t ta = completion_time(a, ms, horizon);
        out.violation = !(tb <= tk && tk <= ta);
        return out;
      });

  Table t({"D", "k", "model1", "model2", "model3", "model4",
           "coupled 2<=3<=4"});
  JsonEmitter json("E8",
                   "E[T1] <= E[T2] <= E[T3] <= E[T4]; coupled runs "
                   "pathwise-ordered");
  bool all_ok = true;
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const Cell& c = cells[ci];
    OnlineStats t1, t2, t3, t4;
    std::uint64_t coupled_violations = 0;
    for (int rep = 0; rep < kRepsFast; ++rep) {
      const Trial& tr = trials[ci * kRepsFast + rep];
      if (tr.has_m1) t1.add(tr.m1);
      t2.add(tr.m2);
      t3.add(tr.m3);
      t4.add(tr.m4);
      if (tr.violation) ++coupled_violations;
    }
    // Independent-run means carry sampling noise where the true gap is
    // small (3 -> 4 at lambda = mu/2 differs by a few phases), hence the
    // doubled confidence slack; the coupled column is exact.
    const bool ok = t1.mean() <= t2.mean() + 2 * t2.ci_halfwidth() &&
                    t2.mean() <= t3.mean() + 2 * t3.ci_halfwidth() &&
                    t3.mean() <= t4.mean() + 2 * t4.ci_halfwidth() &&
                    coupled_violations == 0;
    all_ok = all_ok && ok;
    t.row({num(std::uint64_t(c.d)), num(c.k), num(t1.mean(), 1),
           num(t2.mean(), 1), num(t3.mean(), 1), num(t4.mean(), 1),
           coupled_violations == 0 ? "0 violations"
                                   : num(coupled_violations)});
    json.row({{"depth", c.d},
              {"k", c.k},
              {"model1_phases", t1.mean()},
              {"model2_phases", t2.mean()},
              {"model3_phases", t3.mean()},
              {"model4_phases", t4.mean()},
              {"coupled_violations", coupled_violations},
              {"ok", ok}});
  }
  t.print();
  verdict(all_ok,
          "chain holds: exactly (coupled) and in independent means (within "
          "confidence intervals)");
  json.pass(all_ok);
  json.set_run_info(opt.jobs, timer.wall_ms(), timer.cpu_ms());
  return 0;
}
