// E8 — Theorem 4.15's domination chain (§4.2, Lemmas 4.10-4.15):
//   E[T(model 1)] <= E[T(model 2)] <= E[T(model 3)] <= E[T(model 4)].
//
// Two views:
//  * independent simulations of all four models on the same (k, D) grid —
//    the mean columns (model 1 is the radio network itself, in collection
//    phases);
//  * the paper's own coupling: ONE random move sequence applied to the
//    three initial partitions b <= k <= a (Lemma 4.8 gives the pathwise
//    order T(b) <= T(k) <= T(a) on every draw, no statistical slack).

#include <vector>

#include "common.h"
#include "graph/generators.h"
#include "protocols/tree.h"
#include "queueing/analysis.h"
#include "queueing/models.h"
#include "queueing/partition.h"
#include "queueing/tandem.h"
#include "support/rng.h"

using namespace radiomc;
using namespace radiomc::bench;
using namespace radiomc::queueing;

int main() {
  header("E8: Theorem 4.15 model chain",
         "E[T1] <= E[T2] <= E[T3] <= E[T4] (phases); coupled runs are "
         "pathwise-ordered");

  Rng rng(0xE8);
  const double mu = mu_decay();
  const double lambda = mu / 2;
  Table t({"D", "k", "model1", "model2", "model3", "model4",
           "coupled 2<=3<=4"});
  bool all_ok = true;
  for (std::uint32_t d : {6u, 12u, 24u}) {
    const Graph g = gen::path(d + 1);
    const BfsTree tree = oracle_bfs_tree(g, 0);
    for (std::uint64_t k : {8u, 24u, 64u}) {
      OnlineStats t1, t2, t3, t4;
      const int reps_radio = 12;
      const int reps_fast = 300;
      std::uint64_t coupled_violations = 0;
      for (int rep = 0; rep < reps_fast; ++rep) {
        Rng r = rng.split(d * 1000 + k * 13 + rep);
        std::vector<std::uint32_t> levels;
        std::vector<NodeId> sources;
        for (std::uint64_t i = 0; i < k; ++i) {
          const std::uint32_t l =
              static_cast<std::uint32_t>(1 + r.next_below(d));
          levels.push_back(l);
          sources.push_back(static_cast<NodeId>(l));
        }
        if (rep < reps_radio)
          t1.add(static_cast<double>(
              run_model1_phases(g, tree, sources, r.next())));
        t2.add(static_cast<double>(run_model2(levels, d, mu, r)));
        t3.add(static_cast<double>(run_model3(k, d, mu, lambda, r)));
        t4.add(static_cast<double>(run_model4(k, d, mu, lambda, r)));

        // Coupled check: identical move sequence, ordered partitions.
        Partition b(d + 1, 0), kk(d + 1, 0), a(d + 1, 0);
        for (std::uint32_t l : levels) ++b[l - 1];
        kk[d] = k;
        for (std::uint32_t i = 0; i < d; ++i)
          a[i] = sample_stationary_queue(lambda, mu, r);
        a[d] = k;
        const std::uint64_t horizon = 60'000;
        const auto ms = random_move_sequence(d + 1, mu, lambda, 4096, r);
        const std::uint64_t tb = completion_time(b, ms, horizon);
        const std::uint64_t tk = completion_time(kk, ms, horizon);
        const std::uint64_t ta = completion_time(a, ms, horizon);
        if (!(tb <= tk && tk <= ta)) ++coupled_violations;
      }
      // Independent-run means carry sampling noise where the true gap is
      // small (3 -> 4 at lambda = mu/2 differs by a few phases), hence the
      // doubled confidence slack; the coupled column is exact.
      const bool ok = t1.mean() <= t2.mean() + 2 * t2.ci_halfwidth() &&
                      t2.mean() <= t3.mean() + 2 * t3.ci_halfwidth() &&
                      t3.mean() <= t4.mean() + 2 * t4.ci_halfwidth() &&
                      coupled_violations == 0;
      all_ok = all_ok && ok;
      t.row({num(std::uint64_t(d)), num(k), num(t1.mean(), 1),
             num(t2.mean(), 1), num(t3.mean(), 1), num(t4.mean(), 1),
             coupled_violations == 0 ? "0 violations"
                                     : num(coupled_violations)});
    }
  }
  verdict(all_ok,
          "chain holds: exactly (coupled) and in independent means (within "
          "confidence intervals)");
  return 0;
}
