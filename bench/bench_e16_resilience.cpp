// E16 — resilience sweep: the paper's protocols assume a reliable slot-
// synchronous radio; this experiment measures how gracefully they degrade
// when that assumption breaks. For collection (§4), p2p (§5) and
// k-broadcast (§6) on a fixed grid, sweep fault regimes (crash-recover
// churn, jamming, message drops, and their combination) and report
// completion-slot inflation over the fault-free baseline plus the
// delivery ratio. Every faulted run must end structurally — ok or
// degraded via the stall watchdog — never by exhausting max_slots.
//
// Trials shard across --jobs threads (support/parallel.h); per-trial
// streams are derived serially in (regime, protocol, rep) order, so the
// BENCH_E16.json document is byte-identical whatever the job count
// (modulo the trailing "run" member).

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/conformance.h"
#include "analysis/lifecycle.h"
#include "analysis/trace_reader.h"
#include "common.h"
#include "telemetry/jsonl_sink.h"
#include "faults/fault_plan.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/broadcast_service.h"
#include "protocols/collection.h"
#include "protocols/dfs_numbering.h"
#include "protocols/point_to_point.h"
#include "protocols/tree.h"
#include "support/rng.h"

using namespace radiomc;
using namespace radiomc::bench;

namespace {

struct Regime {
  const char* name;
  FaultPlan plan;
};

std::vector<Regime> regimes() {
  std::vector<Regime> out;
  out.push_back({"baseline", FaultPlan{}});
  FaultPlan crash;
  crash.crash_rate = 0.02;
  crash.recover_rate = 0.5;
  crash.epoch_slots = 256;
  out.push_back({"crash2%", crash});
  FaultPlan jam1;
  jam1.jam_prob = 0.1;
  out.push_back({"jam10%", jam1});
  FaultPlan jam2;
  jam2.jam_prob = 0.2;
  out.push_back({"jam20%", jam2});
  FaultPlan drop;
  drop.drop_prob = 0.1;
  out.push_back({"drop10%", drop});
  FaultPlan combo = crash;
  combo.jam_prob = 0.1;
  out.push_back({"crash+jam", combo});
  return out;
}

constexpr const char* kProtocols[] = {"collection", "p2p", "broadcast"};
constexpr std::uint64_t kMessages = 12;
constexpr SlotTime kStall = 100'000;
constexpr int kReps = 3;

/// One protocol run under one fault regime.
struct Trial {
  double slots = 0;
  double delivery = 0;  // delivered fraction of the k messages
  bool degraded = false;
  bool failed = false;  // max_slots exhausted — must never happen
};

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  RunTimer timer;
  header("E16: resilience under fault injection",
         "under crash-recover churn, jamming and drops, every protocol "
         "terminates ok or degraded; slots inflate, delivery stays high");

  const Graph g = gen::grid(6, 6);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const PreparationResult prep = run_preparation(g, tree);
  const auto regs = regimes();

  // One stream per (regime, protocol, rep), split serially.
  Rng rng(0xE16);
  std::vector<Rng> streams;
  streams.reserve(regs.size() * 3 * kReps);
  for (std::size_t ri = 0; ri < regs.size(); ++ri)
    for (int p = 0; p < 3; ++p)
      for (int rep = 0; rep < kReps; ++rep)
        streams.push_back(rng.split(ri * 100 + p * 10 + rep));

  const auto trials =
      run_indexed(streams.size(), opt.jobs, [&](std::uint64_t i) {
        const FaultPlan& plan = regs[i / (3 * kReps)].plan;
        const int proto = static_cast<int>((i / kReps) % 3);
        Rng r = streams[i];
        Trial out;
        if (proto == 0) {
          std::vector<Message> init;
          for (std::uint64_t m = 0; m < kMessages; ++m) {
            Message msg;
            msg.kind = MsgKind::kData;
            msg.origin =
                static_cast<NodeId>(1 + r.next_below(g.num_nodes() - 1));
            msg.seq = static_cast<std::uint32_t>(m);
            init.push_back(msg);
          }
          CollectionConfig cfg = CollectionConfig::for_graph(g);
          cfg.faults = plan;
          cfg.stall_slots = kStall;
          const auto o = run_collection(g, tree, init, cfg, r.next());
          out.slots = static_cast<double>(o.slots);
          out.delivery = static_cast<double>(o.deliveries.size()) / kMessages;
          out.degraded = o.status == RunStatus::kDegraded;
          out.failed = o.status == RunStatus::kFailed;
        } else if (proto == 1) {
          std::vector<P2pRequest> reqs;
          for (std::uint64_t m = 0; m < kMessages; ++m) {
            P2pRequest req;
            req.src = static_cast<NodeId>(r.next_below(g.num_nodes()));
            req.dst = static_cast<NodeId>(r.next_below(g.num_nodes()));
            req.payload = m;
            reqs.push_back(req);
          }
          P2pConfig cfg = P2pConfig::for_graph(g);
          cfg.faults = plan;
          cfg.stall_slots = kStall;
          const auto o = run_point_to_point(g, prep, reqs, cfg, r.next());
          out.slots = static_cast<double>(o.slots);
          out.delivery = static_cast<double>(o.delivered) / kMessages;
          out.degraded = o.status == RunStatus::kDegraded;
          out.failed = o.status == RunStatus::kFailed;
        } else {
          std::vector<NodeId> sources;
          for (std::uint64_t m = 0; m < kMessages; ++m)
            sources.push_back(
                static_cast<NodeId>(r.next_below(g.num_nodes())));
          BroadcastServiceConfig cfg = BroadcastServiceConfig::for_graph(g);
          cfg.faults = plan;
          cfg.stall_slots = kStall;
          const auto o = run_k_broadcast(g, tree, sources, cfg, r.next());
          out.slots = static_cast<double>(o.slots);
          // Crash recovery can resurrect a stale in-flight copy whose
          // windowed wire sequence aliases to a phantom index past k, so
          // the prefix may overshoot; all k real messages are below it
          // either way (see docs/PROTOCOLS.md, fault model).
          out.delivery =
              static_cast<double>(std::min<std::uint32_t>(
                  o.delivered_prefix, kMessages)) /
              kMessages;
          out.degraded = o.status == RunStatus::kDegraded;
          out.failed = o.status == RunStatus::kFailed;
        }
        return out;
      });

  Table t({"regime", "protocol", "slots", "inflation", "delivery",
           "degraded"});
  JsonEmitter json("E16",
                   "under crash-recover churn, jamming and drops, every "
                   "protocol terminates ok or degraded; slots inflate, "
                   "delivery stays high");
  bool ok = true;
  double baseline_slots[3] = {0, 0, 0};
  for (std::size_t ri = 0; ri < regs.size(); ++ri) {
    for (int p = 0; p < 3; ++p) {
      OnlineStats slots, delivery;
      int degraded = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        const Trial& tr = trials[(ri * 3 + p) * kReps + rep];
        slots.add(tr.slots);
        delivery.add(tr.delivery);
        degraded += tr.degraded ? 1 : 0;
        ok = ok && !tr.failed;
      }
      if (ri == 0) {
        baseline_slots[p] = slots.mean();
        // The baseline must complete everything, or the sweep is
        // measuring the wrong thing.
        ok = ok && delivery.mean() >= 1.0 && degraded == 0;
      }
      const double inflation =
          baseline_slots[p] > 0 ? slots.mean() / baseline_slots[p] : 0.0;
      t.row({regs[ri].name, kProtocols[p], num(slots.mean(), 0),
             num(inflation, 2), num(delivery.mean(), 2),
             num(static_cast<std::uint64_t>(degraded)) + "/" +
                 num(static_cast<std::uint64_t>(kReps))});
      json.row({{"regime", regs[ri].name},
                {"protocol", kProtocols[p]},
                {"crash_rate", regs[ri].plan.crash_rate},
                {"jam_prob", regs[ri].plan.jam_prob},
                {"drop_prob", regs[ri].plan.drop_prob},
                {"mean_slots", slots.mean()},
                {"inflation", inflation},
                {"delivery_ratio", delivery.mean()},
                {"degraded", degraded}});
    }
  }
  t.print();

  // Conformance cross-checks on traced runs (src/analysis):
  //  (a) the fault-free baseline must pass the full strict audit — the
  //      paper's guarantees hold exactly when no faults are injected;
  //  (b) a jammed run's trace must tally jam-killed receptions (txn == 1)
  //      separately from genuine collisions (txn >= 2), so jamming does
  //      not inflate the collision statistics above.
  auto traced_collection = [&](const FaultPlan& plan, std::uint64_t salt) {
    std::ostringstream buf;
    telemetry::JsonlTraceSink sink(buf);
    CollectionConfig cfg = CollectionConfig::for_graph(g);
    sink.set_protocol("collection");
    sink.set_slot_structure(cfg.slots);
    sink.set_levels(tree.level);
    cfg.trace = &sink;
    cfg.faults = plan;
    cfg.stall_slots = kStall;
    Rng r = rng.split(salt);
    std::vector<Message> init;
    for (std::uint64_t m = 0; m < kMessages; ++m) {
      Message msg;
      msg.kind = MsgKind::kData;
      msg.origin = static_cast<NodeId>(1 + r.next_below(g.num_nodes() - 1));
      msg.seq = static_cast<std::uint32_t>(m);
      init.push_back(msg);
    }
    run_collection(g, tree, init, cfg, r.next());
    sink.finish();
    std::istringstream in(buf.str());
    return analysis::read_trace(in);
  };

  bool audit_ok = false;
  {
    const analysis::TraceReadResult read =
        traced_collection(FaultPlan{}, 991);
    if (read.ok) {
      const auto flights = analysis::build_lifecycles(read.trace);
      const analysis::AuditReport audit =
          analysis::audit_trace(read.trace, flights);
      audit_ok = audit.pass;
      // Fault-free: jam-killed receptions cannot exist.
      audit_ok = audit_ok && read.trace.jam_count == 0;
    }
    json.row({{"audit", "baseline_strict"}, {"ok", audit_ok}});
    verdict(audit_ok,
            "fault-free baseline trace passes the strict conformance audit");
  }

  bool split_ok = false;
  {
    FaultPlan jam;
    jam.jam_prob = 0.2;
    const analysis::TraceReadResult read = traced_collection(jam, 992);
    if (read.ok) {
      // Under jamming the trace must attribute txn==1 losses to the jam
      // counter, never to the genuine-collision counter.
      split_ok = read.trace.jam_count > 0;
      json.row({{"audit", "jam_split"},
                {"jams", read.trace.jam_count},
                {"collisions", read.trace.collision_count},
                {"ok", split_ok}});
    }
    verdict(split_ok,
            "jammed trace separates jam-killed receptions from genuine "
            "collisions");
  }
  ok = ok && audit_ok && split_ok;

  verdict(ok, "all runs ended ok or degraded; fault-free baseline complete");
  json.pass(ok);
  json.set_run_info(opt.jobs, timer.wall_ms(), timer.cpu_ms());
  std::printf(
      "   note: inflation = mean slots over the fault-free baseline of the "
      "same protocol; delivery = delivered fraction of the %llu messages "
      "(for broadcast, the every-node prefix).\n",
      static_cast<unsigned long long>(kMessages));
  return 0;
}
