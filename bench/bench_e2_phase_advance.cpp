// E2 — Theorem 4.1:
//   "Let i >= 1 be a level containing messages at the beginning of a phase.
//    There is probability mu = e^-1 (1 - e^-1) that during the phase a
//    message from level i is successfully received by its BFS parent."
//
// We run the collection protocol on several topologies, and for every
// (level, phase) pair with the level occupied at the phase start we count
// whether a message advanced. The empirical rate must clear mu ~ 0.2325
// (it is a deliberately loose bound; the table shows how much slack the
// real protocol has, including in the overloaded TRY > Delta regime that
// the theorem's Case 2 covers — the "flood" rows place Delta messages on
// every node).

#include <string>
#include <vector>

#include "common.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/collection.h"
#include "protocols/tree.h"
#include "queueing/analysis.h"
#include "support/rng.h"

using namespace radiomc;
using namespace radiomc::bench;

namespace {

struct Case {
  std::string name;
  Graph g;
  int copies;  // messages per node
};

}  // namespace

int main() {
  header("E2: Theorem 4.1 per-phase level advance",
         "P(occupied level advances a message to its parent per phase) >= "
         "mu = e^-1(1-e^-1) ~ 0.2325");

  Rng rng(0xE2);
  std::vector<Case> cases;
  cases.push_back({"path64", gen::path(64), 1});
  cases.push_back({"grid8x8", gen::grid(8, 8), 1});
  cases.push_back({"rary127", gen::rary_tree(127, 2), 1});
  cases.push_back({"gnp64", gen::gnp_connected(64, 0.08, rng), 1});
  cases.push_back({"udg64", gen::unit_disk_connected(
                                64, gen::udg_connect_radius(64), rng),
                   1});
  cases.push_back({"grid8x8 flood", gen::grid(8, 8), 4});
  cases.push_back({"star32 flood", gen::star(33), 8});

  Table t({"topology", "n", "Delta", "D", "occupied", "advanced",
           "P(advance)", "mu_bound", "verdict"});
  bool all_ok = true;
  for (auto& c : cases) {
    const BfsTree tree = oracle_bfs_tree(c.g, 0);
    std::uint64_t occ = 0, adv = 0;
    for (int rep = 0; rep < 3; ++rep) {
      std::vector<Message> init;
      for (NodeId v = 1; v < c.g.num_nodes(); ++v)
        for (int s = 0; s < c.copies; ++s) {
          Message m;
          m.kind = MsgKind::kData;
          m.origin = v;
          m.seq = static_cast<std::uint32_t>(s);
          init.push_back(m);
        }
      const auto out = run_collection(c.g, tree, init,
                                      CollectionConfig::for_graph(c.g),
                                      rng.next());
      if (!out.completed) continue;
      for (std::uint32_t l = 1; l < out.occupied_phases.size(); ++l) {
        occ += out.occupied_phases[l];
        adv += out.advance_phases[l];
      }
    }
    const double p = occ ? static_cast<double>(adv) / occ : 0.0;
    const bool ok = p >= queueing::mu_decay();
    all_ok = all_ok && ok;
    t.row({c.name, num(std::uint64_t(c.g.num_nodes())),
           num(std::uint64_t(c.g.max_degree())), num(std::uint64_t(tree.depth)),
           num(occ), num(adv), num(p, 3), num(queueing::mu_decay(), 4),
           ok ? "OK" : "BELOW"});
  }
  verdict(all_ok, "every topology clears the Theorem 4.1 lower bound");
  return 0;
}
