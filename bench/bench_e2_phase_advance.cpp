// E2 — Theorem 4.1:
//   "Let i >= 1 be a level containing messages at the beginning of a phase.
//    There is probability mu = e^-1 (1 - e^-1) that during the phase a
//    message from level i is successfully received by its BFS parent."
//
// We run the collection protocol on several topologies, and for every
// (level, phase) pair with the level occupied at the phase start we count
// whether a message advanced. The empirical rate must clear mu ~ 0.2325
// (it is a deliberately loose bound; the table shows how much slack the
// real protocol has, including in the overloaded TRY > Delta regime that
// the theorem's Case 2 covers — the "flood" rows place Delta messages on
// every node).
//
// The (case, rep) collection runs shard across --jobs threads; seeds are
// drawn serially in loop order, so counts match the serial run exactly.

#include <sstream>
#include <string>
#include <vector>

#include "analysis/conformance.h"
#include "analysis/trace_reader.h"
#include "common.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/collection.h"
#include "protocols/tree.h"
#include "queueing/analysis.h"
#include "support/rng.h"
#include "telemetry/jsonl_sink.h"

using namespace radiomc;
using namespace radiomc::bench;

namespace {

struct Case {
  std::string name;
  Graph g;
  int copies;  // messages per node
};

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  RunTimer timer;
  header("E2: Theorem 4.1 per-phase level advance",
         "P(occupied level advances a message to its parent per phase) >= "
         "mu = e^-1(1-e^-1) ~ 0.2325");

  Rng rng(0xE2);
  std::vector<Case> cases;
  cases.push_back({"path64", gen::path(64), 1});
  cases.push_back({"grid8x8", gen::grid(8, 8), 1});
  cases.push_back({"rary127", gen::rary_tree(127, 2), 1});
  cases.push_back({"gnp64", gen::gnp_connected(64, 0.08, rng), 1});
  cases.push_back({"udg64", gen::unit_disk_connected(
                                64, gen::udg_connect_radius(64), rng),
                   1});
  cases.push_back({"grid8x8 flood", gen::grid(8, 8), 4});
  cases.push_back({"star32 flood", gen::star(33), 8});

  constexpr int kReps = 3;
  std::vector<std::uint64_t> seeds;
  seeds.reserve(cases.size() * kReps);
  for (std::size_t ci = 0; ci < cases.size(); ++ci)
    for (int rep = 0; rep < kReps; ++rep) seeds.push_back(rng.next());

  struct Counts {
    std::uint64_t occ = 0, adv = 0;
  };
  const auto counts =
      run_indexed(seeds.size(), opt.jobs, [&](std::uint64_t i) {
        const Case& c = cases[i / kReps];
        const BfsTree tree = oracle_bfs_tree(c.g, 0);
        std::vector<Message> init;
        for (NodeId v = 1; v < c.g.num_nodes(); ++v)
          for (int s = 0; s < c.copies; ++s) {
            Message m;
            m.kind = MsgKind::kData;
            m.origin = v;
            m.seq = static_cast<std::uint32_t>(s);
            init.push_back(m);
          }
        const auto out = run_collection(c.g, tree, init,
                                        CollectionConfig::for_graph(c.g),
                                        seeds[i]);
        Counts cnt;
        if (!out.completed) return cnt;
        for (std::uint32_t l = 1; l < out.occupied_phases.size(); ++l) {
          cnt.occ += out.occupied_phases[l];
          cnt.adv += out.advance_phases[l];
        }
        return cnt;
      });

  Table t({"topology", "n", "Delta", "D", "occupied", "advanced",
           "P(advance)", "mu_bound", "verdict"});
  JsonEmitter json("E2",
                   "P(occupied level advances per phase) >= mu = "
                   "e^-1(1-e^-1) ~ 0.2325");
  bool all_ok = true;
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const Case& c = cases[ci];
    const BfsTree tree = oracle_bfs_tree(c.g, 0);
    std::uint64_t occ = 0, adv = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      occ += counts[ci * kReps + rep].occ;
      adv += counts[ci * kReps + rep].adv;
    }
    const double p = occ ? static_cast<double>(adv) / occ : 0.0;
    const bool ok = p >= queueing::mu_decay();
    all_ok = all_ok && ok;
    t.row({c.name, num(std::uint64_t(c.g.num_nodes())),
           num(std::uint64_t(c.g.max_degree())), num(std::uint64_t(tree.depth)),
           num(occ), num(adv), num(p, 3), num(queueing::mu_decay(), 4),
           ok ? "OK" : "BELOW"});
    json.row({{"topology", c.name},
              {"n", c.g.num_nodes()},
              {"max_degree", c.g.max_degree()},
              {"depth", tree.depth},
              {"occupied", occ},
              {"advanced", adv},
              {"p_advance", p},
              {"mu_bound", queueing::mu_decay()},
              {"ok", ok}});
  }
  // Trace-derived cross-check: run one traced grid8x8 collection and
  // re-estimate the advance probability from the JSONL stream with the
  // offline auditor's estimator (analysis::tally_phases). Both the
  // protocol's own counters and the trace replay land in BENCH_E2.json,
  // so drift between the two measurement paths is diffable.
  {
    const Graph g = gen::grid(8, 8);
    const BfsTree tree = oracle_bfs_tree(g, 0);
    std::ostringstream trace_buf;
    telemetry::JsonlTraceSink sink(trace_buf);
    CollectionConfig cfg = CollectionConfig::for_graph(g);
    sink.set_protocol("collection");
    sink.set_slot_structure(cfg.slots);
    sink.set_levels(tree.level);
    cfg.trace = &sink;
    std::vector<Message> init;
    for (NodeId v = 1; v < g.num_nodes(); ++v) {
      Message m;
      m.kind = MsgKind::kData;
      m.origin = v;
      init.push_back(m);
    }
    const auto out = run_collection(g, tree, init, cfg, rng.next());
    sink.finish();

    std::uint64_t proto_occ = 0, proto_adv = 0;
    for (std::uint32_t l = 1; l < out.occupied_phases.size(); ++l) {
      proto_occ += out.occupied_phases[l];
      proto_adv += out.advance_phases[l];
    }
    const double p_proto =
        proto_occ ? static_cast<double>(proto_adv) / proto_occ : 0.0;

    std::istringstream in(trace_buf.str());
    const analysis::TraceReadResult read = analysis::read_trace(in);
    double p_trace = 0.0;
    bool trace_ok = false;
    if (read.ok) {
      const analysis::PhaseTallies pt = analysis::tally_phases(read.trace);
      if (pt.occupied_level_phases > 0) {
        p_trace = static_cast<double>(pt.advanced_level_phases) /
                  static_cast<double>(pt.occupied_level_phases);
        trace_ok = p_trace >= queueing::mu_decay();
      }
    }
    all_ok = all_ok && trace_ok;
    std::printf("   trace replay (grid8x8): p_advance=%.3f (protocol) vs "
                "%.3f (trace-derived), mu=%.4f\n",
                p_proto, p_trace, queueing::mu_decay());
    json.row({{"topology", "grid8x8 traced"},
              {"p_advance", p_proto},
              {"p_advance_trace", p_trace},
              {"mu_bound", queueing::mu_decay()},
              {"ok", trace_ok}});
  }

  t.print();
  verdict(all_ok, "every topology clears the Theorem 4.1 lower bound "
                  "(protocol counters and trace replay)");
  json.pass(all_ok);
  json.set_run_info(opt.jobs, timer.wall_ms(), timer.cpu_ms());
  return 0;
}
