// F1 — Figure 1, the only figure in the paper: the four-node scenario in
// the proof of Theorem 3.1. Nodes u, v, u', v' with edges u-v, u'-v' and
// the cross edges u-v', u'-v. If v received u's message at slot t and u
// missed the acknowledgement, some v' != v must have acked at t+1 — but
// then v' received a message designated to it from some u'' != u at t,
// which makes two transmitting neighbors of v' at slot t: contradiction.
//
// This binary executes the scenario for every transmitter subset and
// prints the slot-by-slot outcome, demonstrating the contradiction is
// vacuous (the bad case never materializes) and the ack is deterministic.
//
// Fully deterministic (no RNG) and tiny; --jobs is accepted for harness
// uniformity only.

#include <cstdio>

#include "common.h"
#include "graph/graph.h"
#include "radio/network.h"
#include "radio/station.h"

#include <deque>
#include <memory>

using namespace radiomc;
using namespace radiomc::bench;

namespace {

class Probe final : public Station {
 public:
  NodeId me = 0;
  bool sends = false;
  NodeId designated = kNoNode;
  bool got_data = false;
  NodeId data_from = kNoNode;
  bool got_ack = false;

  void on_slot(SlotTime t, std::span<std::optional<Message>> tx) override {
    if (t == 0 && sends) {
      Message m;
      m.kind = MsgKind::kData;
      m.origin = me;
      m.dest = designated;
      tx[0] = m;
    } else if (t == 1 && got_data) {
      Message ack;
      ack.kind = MsgKind::kAck;
      ack.dest = data_from;
      tx[0] = ack;
    }
  }
  void on_receive(SlotTime t, ChannelId, const Message& m) override {
    if (t == 0 && m.kind == MsgKind::kData && m.dest == me) {
      got_data = true;
      data_from = m.sender;
    } else if (t == 1 && m.kind == MsgKind::kAck && m.dest == me) {
      got_ack = true;
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  RunTimer timer;
  std::printf("== F1: Figure 1 / Theorem 3.1 scenario ==\n");
  std::printf("   graph: u(0)-v(1), u'(2)-v'(3), cross edges u-v', u'-v\n\n");
  const Graph g(4, {{0, 1}, {2, 3}, {0, 3}, {2, 1}});
  const char* names[4] = {"u ", "v ", "u'", "v'"};

  JsonEmitter json("F1",
                   "Theorem 3.1: every received message is acknowledged "
                   "with certainty");
  bool theorem_holds = true;
  for (int mask = 0; mask < 4; ++mask) {
    std::deque<Probe> probes(4);
    for (NodeId i = 0; i < 4; ++i) probes[i].me = i;
    if (mask & 1) {
      probes[0].sends = true;
      probes[0].designated = 1;
    }
    if (mask & 2) {
      probes[2].sends = true;
      probes[2].designated = 3;
    }
    RadioNetwork net(g);
    net.attach({&probes[0], &probes[1], &probes[2], &probes[3]});
    net.run(2);

    std::printf("   transmitters:%s%s%s\n", (mask & 1) ? " u->v" : "",
                (mask & 2) ? " u'->v'" : "", mask == 0 ? " (none)" : "");
    bool mask_ok = true;
    for (NodeId i = 0; i < 4; ++i) {
      const Probe& p = probes[i];
      if (p.sends)
        std::printf("     %s sent to %s: %s\n", names[i],
                    names[p.designated],
                    probes[p.designated].got_data
                        ? (p.got_ack ? "received, ACKED (Thm 3.1)"
                                     : "received, ACK LOST (!!)")
                        : "collided (silence, no false ack)");
      if (p.sends && probes[p.designated].got_data && !p.got_ack) {
        theorem_holds = false;
        mask_ok = false;
      }
    }
    json.row({{"mask", mask},
              {"u_sends", (mask & 1) != 0},
              {"uprime_sends", (mask & 2) != 0},
              {"v_got_data", probes[1].got_data},
              {"vprime_got_data", probes[3].got_data},
              {"every_reception_acked", mask_ok}});
  }
  std::printf("\n   [%s] every received message was acknowledged with "
              "certainty\n",
              theorem_holds ? "SHAPE OK" : "MISMATCH");
  json.pass(theorem_holds);
  json.set_run_info(opt.jobs, timer.wall_ms(), timer.cpu_ms());
  return theorem_holds ? 0 : 1;
}
