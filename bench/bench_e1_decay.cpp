// E1 — Decay property (2), from [3] as used in §1.4:
//   "If several neighbors of a node v use Decay to send messages then with
//    probability greater than 1/2 the node v receives one of the messages."
// One invocation lasts 2 ceil(log2 Delta) slots.
//
// We sweep the degree bound Delta and the number of concurrently
// transmitting neighbors k (1..Delta) on a star neighborhood and report the
// empirical reception probability next to the paper's 1/2 bound; then a
// UDG neighborhood to show the property is not star-specific.

#include <algorithm>
#include <vector>

#include "common.h"
#include "graph/generators.h"
#include "protocols/decay.h"
#include "support/rng.h"

using namespace radiomc;
using namespace radiomc::bench;

int main() {
  header("E1: Decay property (2)",
         "P(receive) > 1/2 within 2 log2(Delta) slots, for any 1..Delta "
         "transmitting neighbors");

  const int trials = 4000;
  Table t({"Delta", "tx_nbrs", "decay_len", "P(receive)", "paper_bound",
           "verdict"});
  bool all_ok = true;
  Rng rng(0xE1);
  for (int delta : {2, 4, 8, 16, 32, 64, 128}) {
    const Graph g = gen::star(delta + 1);
    const std::uint32_t len = decay_length(delta);
    for (int k : {1, delta / 2 > 0 ? delta / 2 : 1, delta}) {
      std::vector<NodeId> tx;
      for (int i = 1; i <= k; ++i) tx.push_back(static_cast<NodeId>(i));
      int succ = 0;
      for (int i = 0; i < trials; ++i)
        if (decay_single_trial(g, 0, tx, len, rng)) ++succ;
      const double p = static_cast<double>(succ) / trials;
      // Delta = 2, k = 2 attains exactly 1/2 analytically (both transmit
      // and collide at step 0; success iff exactly one survives to step 1,
      // probability 2 * 1/2 * 1/2); allow sampling noise at that boundary.
      const bool ok = p > 0.5 - 0.025;
      all_ok = all_ok && ok;
      t.row({num(std::uint64_t(delta)), num(std::uint64_t(k)),
             num(std::uint64_t(len)), num(p, 3), "0.500",
             ok ? "OK" : "BELOW"});
    }
  }
  verdict(all_ok,
          "reception probability >= 1/2 for every (Delta, k); the strict "
          "inequality is tight only at the (2, 2) boundary, where the exact "
          "value is 1/2");

  // Worst-case-k profile: the minimum over k per Delta (the bound must be
  // uniform in k).
  std::printf("\n   minimum over k = 1..Delta (Delta = 16):\n");
  {
    const int delta = 16;
    const Graph g = gen::star(delta + 1);
    Table tmin({"k", "P(receive)"});
    double worst = 1.0;
    for (int k = 1; k <= delta; ++k) {
      std::vector<NodeId> tx;
      for (int i = 1; i <= k; ++i) tx.push_back(static_cast<NodeId>(i));
      int succ = 0;
      for (int i = 0; i < trials; ++i)
        if (decay_single_trial(g, 0, tx, decay_length(delta), rng)) ++succ;
      const double p = static_cast<double>(succ) / trials;
      worst = std::min(worst, p);
      tmin.row({num(std::uint64_t(k)), num(p, 3)});
    }
    verdict(worst > 0.5, "minimum over k stays above 1/2");
  }
  return 0;
}
