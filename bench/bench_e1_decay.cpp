// E1 — Decay property (2), from [3] as used in §1.4:
//   "If several neighbors of a node v use Decay to send messages then with
//    probability greater than 1/2 the node v receives one of the messages."
// One invocation lasts 2 ceil(log2 Delta) slots.
//
// We sweep the degree bound Delta and the number of concurrently
// transmitting neighbors k (1..Delta) on a star neighborhood and report the
// empirical reception probability next to the paper's 1/2 bound; then a
// UDG neighborhood to show the property is not star-specific.
//
// Each (Delta, k) cell is one trial of the deterministic parallel runner:
// its 4000 decay invocations draw from a stream split off the root in cell
// order, so the table is byte-identical for any --jobs value.

#include <algorithm>
#include <vector>

#include "common.h"
#include "graph/generators.h"
#include "protocols/decay.h"
#include "support/rng.h"

using namespace radiomc;
using namespace radiomc::bench;

namespace {

/// Empirical reception probability over `trials` decay invocations.
double reception_rate(const Graph& g, int k, std::uint32_t len, int trials,
                      Rng& rng) {
  std::vector<NodeId> tx;
  for (int i = 1; i <= k; ++i) tx.push_back(static_cast<NodeId>(i));
  int succ = 0;
  for (int i = 0; i < trials; ++i)
    if (decay_single_trial(g, 0, tx, len, rng)) ++succ;
  return static_cast<double>(succ) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  RunTimer timer;
  header("E1: Decay property (2)",
         "P(receive) > 1/2 within 2 log2(Delta) slots, for any 1..Delta "
         "transmitting neighbors");

  const int trials = 4000;
  Table t({"Delta", "tx_nbrs", "decay_len", "P(receive)", "paper_bound",
           "verdict"});
  JsonEmitter json("E1",
                   "P(receive) > 1/2 within 2 log2(Delta) slots for any "
                   "1..Delta transmitting neighbors");
  bool all_ok = true;
  Rng rng(0xE1);

  struct Cell {
    int delta, k;
  };
  std::vector<Cell> cells;
  for (int delta : {2, 4, 8, 16, 32, 64, 128})
    for (int k : {1, delta / 2 > 0 ? delta / 2 : 1, delta})
      cells.push_back({delta, k});

  const auto rates = run_trials(
      cells.size(), opt.jobs, rng, [&](std::uint64_t i, Rng& r) {
        const Cell& c = cells[i];
        const Graph g = gen::star(c.delta + 1);
        return reception_rate(g, c.k, decay_length(c.delta), trials, r);
      });

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const double p = rates[i];
    // Delta = 2, k = 2 attains exactly 1/2 analytically (both transmit
    // and collide at step 0; success iff exactly one survives to step 1,
    // probability 2 * 1/2 * 1/2); allow sampling noise at that boundary.
    const bool ok = p > 0.5 - 0.025;
    all_ok = all_ok && ok;
    t.row({num(std::uint64_t(c.delta)), num(std::uint64_t(c.k)),
           num(std::uint64_t(decay_length(c.delta))), num(p, 3), "0.500",
           ok ? "OK" : "BELOW"});
    json.row({{"delta", c.delta},
              {"tx_nbrs", c.k},
              {"decay_len", decay_length(c.delta)},
              {"p_receive", p},
              {"ok", ok}});
  }
  t.print();
  verdict(all_ok,
          "reception probability >= 1/2 for every (Delta, k); the strict "
          "inequality is tight only at the (2, 2) boundary, where the exact "
          "value is 1/2");

  // Worst-case-k profile: the minimum over k per Delta (the bound must be
  // uniform in k).
  std::printf("\n   minimum over k = 1..Delta (Delta = 16):\n");
  {
    const int delta = 16;
    const Graph g = gen::star(delta + 1);
    const auto ps = run_trials(
        static_cast<std::uint64_t>(delta), opt.jobs, rng,
        [&](std::uint64_t i, Rng& r) {
          return reception_rate(g, static_cast<int>(i) + 1,
                                decay_length(delta), trials, r);
        });
    Table tmin({"k", "P(receive)"});
    double worst = 1.0;
    for (int k = 1; k <= delta; ++k) {
      const double p = ps[k - 1];
      worst = std::min(worst, p);
      tmin.row({num(std::uint64_t(k)), num(p, 3)});
      json.row({{"section", "min_over_k"},
                {"delta", delta},
                {"tx_nbrs", k},
                {"p_receive", p}});
    }
    tmin.print();
    verdict(worst > 0.5, "minimum over k stays above 1/2");
    all_ok = all_ok && worst > 0.5;
  }
  json.pass(all_ok);
  json.set_run_info(opt.jobs, timer.wall_ms(), timer.cpu_ms());
  return 0;
}
