// E7 — Theorem 4.3:
//   "The expected completion time of model 4 is k/lambda +
//    (1-lambda)/(mu-lambda) * D."
//
// Simulated steady-state tandem queues over a (D, lambda/mu, k) grid,
// measured mean completion vs the closed form. Each grid cell's 300 reps
// run as one parallel trial; streams keep the historical per-rep tags so
// the table matches the serial run bit for bit.

#include <vector>

#include "common.h"
#include "queueing/analysis.h"
#include "queueing/models.h"
#include "support/rng.h"

using namespace radiomc;
using namespace radiomc::bench;
using namespace radiomc::queueing;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  RunTimer timer;
  header("E7: Theorem 4.3 closed form for model 4",
         "E[T] = k/lambda + D (1-lambda)/(mu-lambda) phases");

  Rng rng(0xE7);
  const double mu = mu_decay();
  constexpr int kRepsPerCell = 300;

  struct Cell {
    std::uint32_t d;
    double frac;
    std::uint64_t k;
  };
  std::vector<Cell> cells;
  for (std::uint32_t d : {4u, 16u, 64u})
    for (double frac : {0.25, 0.5, 0.75, 0.9})
      for (std::uint64_t k : {16u, 256u}) cells.push_back({d, frac, k});

  // Streams in the historical (d, frac, k, rep) order.
  std::vector<Rng> streams;
  streams.reserve(cells.size() * kRepsPerCell);
  for (const Cell& c : cells)
    for (int rep = 0; rep < kRepsPerCell; ++rep)
      streams.push_back(
          rng.split(c.d * 100003 +
                    static_cast<std::uint64_t>(c.frac * 100) * 101 +
                    c.k * 7 + rep));

  // Parallelize at cell granularity: each trial folds its 300 reps in rep
  // order, so the per-cell mean is schedule independent.
  const auto means =
      run_indexed(cells.size(), opt.jobs, [&](std::uint64_t ci) {
        const Cell& c = cells[ci];
        const double lambda = mu * c.frac;
        OnlineStats m;
        for (int rep = 0; rep < kRepsPerCell; ++rep) {
          Rng r = streams[ci * kRepsPerCell + rep];
          m.add(static_cast<double>(run_model4(c.k, c.d, mu, lambda, r)));
        }
        return m.mean();
      });

  Table t({"D", "lambda/mu", "k", "measured", "closed_form", "ratio"});
  JsonEmitter json("E7",
                   "E[T] = k/lambda + D (1-lambda)/(mu-lambda) phases, "
                   "within 10%");
  bool ok = true;
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const Cell& c = cells[ci];
    const double lambda = mu * c.frac;
    const double predicted = model4_completion_phases(c.k, c.d, lambda, mu);
    const double ratio = means[ci] / predicted;
    ok = ok && ratio > 0.9 && ratio < 1.1;
    t.row({num(std::uint64_t(c.d)), num(c.frac, 2), num(c.k),
           num(means[ci], 1), num(predicted, 1), num(ratio, 3)});
    json.row({{"depth", c.d},
              {"lambda_over_mu", c.frac},
              {"k", c.k},
              {"measured_phases", means[ci]},
              {"closed_form_phases", predicted},
              {"ratio", ratio}});
  }
  t.print();
  verdict(ok, "measured completion within 10% of the closed form "
              "everywhere on the grid");
  json.pass(ok);
  json.set_run_info(opt.jobs, timer.wall_ms(), timer.cpu_ms());
  return 0;
}
