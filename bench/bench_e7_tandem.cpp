// E7 — Theorem 4.3:
//   "The expected completion time of model 4 is k/lambda +
//    (1-lambda)/(mu-lambda) * D."
//
// Simulated steady-state tandem queues over a (D, lambda/mu, k) grid,
// measured mean completion vs the closed form.

#include "common.h"
#include "queueing/analysis.h"
#include "queueing/models.h"
#include "support/rng.h"

using namespace radiomc;
using namespace radiomc::bench;
using namespace radiomc::queueing;

int main() {
  header("E7: Theorem 4.3 closed form for model 4",
         "E[T] = k/lambda + D (1-lambda)/(mu-lambda) phases");

  Rng rng(0xE7);
  const double mu = mu_decay();
  Table t({"D", "lambda/mu", "k", "measured", "closed_form", "ratio"});
  bool ok = true;
  for (std::uint32_t d : {4u, 16u, 64u}) {
    for (double frac : {0.25, 0.5, 0.75, 0.9}) {
      const double lambda = mu * frac;
      for (std::uint64_t k : {16u, 256u}) {
        OnlineStats m;
        const int reps = 300;
        for (int rep = 0; rep < reps; ++rep) {
          Rng r = rng.split(d * 100003 + static_cast<std::uint64_t>(frac * 100) * 101 +
                            k * 7 + rep);
          m.add(static_cast<double>(run_model4(k, d, mu, lambda, r)));
        }
        const double predicted = model4_completion_phases(k, d, lambda, mu);
        const double ratio = m.mean() / predicted;
        ok = ok && ratio > 0.9 && ratio < 1.1;
        t.row({num(std::uint64_t(d)), num(frac, 2), num(k), num(m.mean(), 1),
               num(predicted, 1), num(ratio, 3)});
      }
    }
  }
  verdict(ok, "measured completion within 10% of the closed form "
              "everywhere on the grid");
  return 0;
}
