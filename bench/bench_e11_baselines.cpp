// E11 — the comparisons that motivate the paper's protocols:
//  (a) §6: pipelined k-broadcast vs one-BGI-flood-per-message ("each
//      message would require 2 D log Delta log n time"): the pipeline's
//      advantage grows linearly in k.
//  (b) §1/§4: randomized collection vs deterministic TDMA: the TDMA frame
//      costs Theta(n) per step, the randomized protocol O(log Delta) —
//      crossover as n grows.
//  (c) §1.3: the centralized wave-expansion schedule (Chlamtac-Weinstein
//      flavor) as the deterministic full-knowledge comparison point for a
//      single broadcast.

#include <string>
#include <vector>

#include "baselines/naive_kbroadcast.h"
#include "baselines/tdma_collection.h"
#include "baselines/wave_schedule.h"
#include "common.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/bgi_broadcast.h"
#include "protocols/broadcast_service.h"
#include "protocols/collection.h"
#include "protocols/tree.h"
#include "support/rng.h"
#include "support/util.h"

using namespace radiomc;
using namespace radiomc::bench;
using namespace radiomc::baselines;

int main() {
  Rng rng(0xE11);

  header("E11a: pipelined k-broadcast vs naive sequential floods",
         "pipeline O((k+D) log Delta log n) vs naive Theta(k (D + log n) "
         "log Delta): speedup grows with k");
  {
    const Graph g = gen::grid(6, 6);
    const BfsTree tree = oracle_bfs_tree(g, 0);
    Table t({"k", "pipeline", "naive", "speedup"});
    double last_speedup = 0;
    for (std::uint64_t k : {1, 4, 16, 64}) {
      OnlineStats pipe, naive;
      for (int rep = 0; rep < 2; ++rep) {
        Rng r = rng.split(k * 10 + rep);
        std::vector<NodeId> sources;
        for (std::uint64_t i = 0; i < k; ++i)
          sources.push_back(static_cast<NodeId>(r.next_below(g.num_nodes())));
        pipe.add(static_cast<double>(
            run_k_broadcast(g, tree, sources,
                            BroadcastServiceConfig::for_graph(g), r.next())
                .slots));
        naive.add(static_cast<double>(
            run_naive_k_broadcast(g, sources, r.next()).slots));
      }
      last_speedup = naive.mean() / pipe.mean();
      t.row({num(k), num(pipe.mean(), 0), num(naive.mean(), 0),
             num(last_speedup, 2)});
    }
    verdict(last_speedup > 2.0,
            "the pipeline wins decisively at large k (who-wins shape)");
  }

  header("E11b: randomized collection vs deterministic TDMA",
         "TDMA Theta((k+D) n) vs randomized O((k+D) log Delta): randomized "
         "wins as n grows");
  {
    Table t({"topology", "n", "randomized", "tdma", "speedup"});
    double last = 0;
    struct Case {
      std::string name;
      Graph g;
    };
    std::vector<Case> cases;
    for (NodeId side : {4u, 6u, 8u, 12u})
      cases.push_back({"grid" + std::to_string(side) + "x" +
                           std::to_string(side),
                       gen::grid(side, side)});
    for (auto& c : cases) {
      const BfsTree tree = oracle_bfs_tree(c.g, 0);
      OnlineStats rand_s, tdma_s;
      for (int rep = 0; rep < 2; ++rep) {
        Rng r = rng.split(c.g.num_nodes() * 7 + rep);
        std::vector<NodeId> sources;
        std::vector<Message> init;
        for (int i = 0; i < 32; ++i) {
          const NodeId v =
              static_cast<NodeId>(1 + r.next_below(c.g.num_nodes() - 1));
          sources.push_back(v);
          Message m;
          m.kind = MsgKind::kData;
          m.origin = v;
          m.seq = static_cast<std::uint32_t>(i);
          init.push_back(m);
        }
        rand_s.add(static_cast<double>(
            run_collection(c.g, tree, init, CollectionConfig::for_graph(c.g),
                           r.next())
                .slots));
        tdma_s.add(
            static_cast<double>(run_tdma_collection(c.g, tree, sources).slots));
      }
      last = tdma_s.mean() / rand_s.mean();
      t.row({c.name, num(std::uint64_t(c.g.num_nodes())), num(rand_s.mean(), 0),
             num(tdma_s.mean(), 0), num(last, 2)});
    }
    verdict(last > 1.0,
            "randomized collection overtakes TDMA at large n (crossover)");
  }

  header("E11c: centralized wave schedule vs randomized BGI flood",
         "full topology knowledge buys a collision-free O(D log^2 n) "
         "schedule; BGI needs no knowledge and pays a log factor");
  {
    Table t({"topology", "n", "D", "wave_rounds", "bgi_slots"});
    struct Case {
      std::string name;
      Graph g;
    };
    std::vector<Case> cases;
    cases.push_back({"path40", gen::path(40)});
    cases.push_back({"grid7x7", gen::grid(7, 7)});
    cases.push_back({"gnp48", gen::gnp_connected(48, 0.12, rng)});
    for (auto& c : cases) {
      const WaveSchedule s = compute_wave_schedule(c.g, 0);
      const WaveOutcome w = execute_wave_schedule(c.g, s);
      // BGI until everyone informed.
      Rng r = rng.split(c.g.num_nodes());
      const std::uint64_t phases =
          4 * (diameter(c.g) + 2 * ceil_log2(c.g.num_nodes()) + 4);
      const auto b = run_bgi_broadcast(c.g, 0, phases, r.next());
      t.row({c.name, num(std::uint64_t(c.g.num_nodes())),
             num(std::uint64_t(diameter(c.g))), num(std::uint64_t(w.slots)),
             num(std::uint64_t(b.slots))});
    }
    std::printf("   (wave schedules verified collision-free and complete "
                "by execution on the engine)\n");
  }
  return 0;
}
