// E11 — the comparisons that motivate the paper's protocols:
//  (a) §6: pipelined k-broadcast vs one-BGI-flood-per-message ("each
//      message would require 2 D log Delta log n time"): the pipeline's
//      advantage grows linearly in k.
//  (b) §1/§4: randomized collection vs deterministic TDMA: the TDMA frame
//      costs Theta(n) per step, the randomized protocol O(log Delta) —
//      crossover as n grows.
//  (c) §1.3: the centralized wave-expansion schedule (Chlamtac-Weinstein
//      flavor) as the deterministic full-knowledge comparison point for a
//      single broadcast.
//
// Each section's trials shard across --jobs threads with streams split
// off in the historical loop order, so every column is job-count
// independent.

#include <string>
#include <vector>

#include "baselines/naive_kbroadcast.h"
#include "baselines/tdma_collection.h"
#include "baselines/wave_schedule.h"
#include "common.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/bgi_broadcast.h"
#include "protocols/broadcast_service.h"
#include "protocols/collection.h"
#include "protocols/tree.h"
#include "support/rng.h"
#include "support/util.h"

using namespace radiomc;
using namespace radiomc::bench;
using namespace radiomc::baselines;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  RunTimer timer;
  Rng rng(0xE11);
  JsonEmitter json("E11",
                   "pipeline vs naive floods; randomized vs TDMA; wave "
                   "schedule vs BGI");
  bool pass = true;

  header("E11a: pipelined k-broadcast vs naive sequential floods",
         "pipeline O((k+D) log Delta log n) vs naive Theta(k (D + log n) "
         "log Delta): speedup grows with k");
  {
    const Graph g = gen::grid(6, 6);
    const BfsTree tree = oracle_bfs_tree(g, 0);
    const std::vector<std::uint64_t> ks = {1, 4, 16, 64};
    constexpr int kReps = 2;
    std::vector<Rng> streams;
    for (std::uint64_t k : ks)
      for (int rep = 0; rep < kReps; ++rep)
        streams.push_back(rng.split(k * 10 + rep));
    struct Trial {
      double pipe = 0, naive = 0;
    };
    const auto trials =
        run_indexed(streams.size(), opt.jobs, [&](std::uint64_t i) {
          const std::uint64_t k = ks[i / kReps];
          Rng r = streams[i];
          std::vector<NodeId> sources;
          for (std::uint64_t j = 0; j < k; ++j)
            sources.push_back(
                static_cast<NodeId>(r.next_below(g.num_nodes())));
          Trial tr;
          tr.pipe = static_cast<double>(
              run_k_broadcast(g, tree, sources,
                              BroadcastServiceConfig::for_graph(g), r.next())
                  .slots);
          tr.naive = static_cast<double>(
              run_naive_k_broadcast(g, sources, r.next()).slots);
          return tr;
        });
    Table t({"k", "pipeline", "naive", "speedup"});
    double last_speedup = 0;
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      OnlineStats pipe, naive;
      for (int rep = 0; rep < kReps; ++rep) {
        pipe.add(trials[ki * kReps + rep].pipe);
        naive.add(trials[ki * kReps + rep].naive);
      }
      last_speedup = naive.mean() / pipe.mean();
      t.row({num(ks[ki]), num(pipe.mean(), 0), num(naive.mean(), 0),
             num(last_speedup, 2)});
      json.row({{"section", "a_pipeline_vs_naive"},
                {"k", ks[ki]},
                {"pipeline_slots_mean", pipe.mean()},
                {"naive_slots_mean", naive.mean()},
                {"speedup", last_speedup}});
    }
    t.print();
    verdict(last_speedup > 2.0,
            "the pipeline wins decisively at large k (who-wins shape)");
    pass = pass && last_speedup > 2.0;
  }

  header("E11b: randomized collection vs deterministic TDMA",
         "TDMA Theta((k+D) n) vs randomized O((k+D) log Delta): randomized "
         "wins as n grows");
  {
    struct Case {
      std::string name;
      Graph g;
    };
    std::vector<Case> cases;
    for (NodeId side : {4u, 6u, 8u, 12u})
      cases.push_back({"grid" + std::to_string(side) + "x" +
                           std::to_string(side),
                       gen::grid(side, side)});
    constexpr int kReps = 2;
    std::vector<Rng> streams;
    for (auto& c : cases)
      for (int rep = 0; rep < kReps; ++rep)
        streams.push_back(rng.split(c.g.num_nodes() * 7 + rep));
    struct Trial {
      double rand_s = 0, tdma_s = 0;
    };
    const auto trials =
        run_indexed(streams.size(), opt.jobs, [&](std::uint64_t i) {
          const Case& c = cases[i / kReps];
          const BfsTree tree = oracle_bfs_tree(c.g, 0);
          Rng r = streams[i];
          std::vector<NodeId> sources;
          std::vector<Message> init;
          for (int j = 0; j < 32; ++j) {
            const NodeId v =
                static_cast<NodeId>(1 + r.next_below(c.g.num_nodes() - 1));
            sources.push_back(v);
            Message m;
            m.kind = MsgKind::kData;
            m.origin = v;
            m.seq = static_cast<std::uint32_t>(j);
            init.push_back(m);
          }
          Trial tr;
          tr.rand_s = static_cast<double>(
              run_collection(c.g, tree, init,
                             CollectionConfig::for_graph(c.g), r.next())
                  .slots);
          tr.tdma_s = static_cast<double>(
              run_tdma_collection(c.g, tree, sources).slots);
          return tr;
        });
    Table t({"topology", "n", "randomized", "tdma", "speedup"});
    double last = 0;
    for (std::size_t ci = 0; ci < cases.size(); ++ci) {
      const Case& c = cases[ci];
      OnlineStats rand_s, tdma_s;
      for (int rep = 0; rep < kReps; ++rep) {
        rand_s.add(trials[ci * kReps + rep].rand_s);
        tdma_s.add(trials[ci * kReps + rep].tdma_s);
      }
      last = tdma_s.mean() / rand_s.mean();
      t.row({c.name, num(std::uint64_t(c.g.num_nodes())),
             num(rand_s.mean(), 0), num(tdma_s.mean(), 0), num(last, 2)});
      json.row({{"section", "b_randomized_vs_tdma"},
                {"topology", c.name},
                {"n", c.g.num_nodes()},
                {"randomized_slots_mean", rand_s.mean()},
                {"tdma_slots_mean", tdma_s.mean()},
                {"speedup", last}});
    }
    t.print();
    verdict(last > 1.0,
            "randomized collection overtakes TDMA at large n (crossover)");
    pass = pass && last > 1.0;
  }

  header("E11c: centralized wave schedule vs randomized BGI flood",
         "full topology knowledge buys a collision-free O(D log^2 n) "
         "schedule; BGI needs no knowledge and pays a log factor");
  {
    struct Case {
      std::string name;
      Graph g;
    };
    std::vector<Case> cases;
    cases.push_back({"path40", gen::path(40)});
    cases.push_back({"grid7x7", gen::grid(7, 7)});
    cases.push_back({"gnp48", gen::gnp_connected(48, 0.12, rng)});
    std::vector<Rng> streams;
    for (auto& c : cases) streams.push_back(rng.split(c.g.num_nodes()));
    struct Trial {
      std::uint64_t wave = 0, bgi = 0;
    };
    const auto trials =
        run_indexed(cases.size(), opt.jobs, [&](std::uint64_t i) {
          const Case& c = cases[i];
          const WaveSchedule s = compute_wave_schedule(c.g, 0);
          const WaveOutcome w = execute_wave_schedule(c.g, s);
          // BGI until everyone informed.
          Rng r = streams[i];
          const std::uint64_t phases =
              4 * (diameter(c.g) + 2 * ceil_log2(c.g.num_nodes()) + 4);
          const auto b = run_bgi_broadcast(c.g, 0, phases, r.next());
          return Trial{w.slots, b.slots};
        });
    Table t({"topology", "n", "D", "wave_rounds", "bgi_slots"});
    for (std::size_t ci = 0; ci < cases.size(); ++ci) {
      const Case& c = cases[ci];
      t.row({c.name, num(std::uint64_t(c.g.num_nodes())),
             num(std::uint64_t(diameter(c.g))),
             num(std::uint64_t(trials[ci].wave)),
             num(std::uint64_t(trials[ci].bgi))});
      json.row({{"section", "c_wave_vs_bgi"},
                {"topology", c.name},
                {"n", c.g.num_nodes()},
                {"diameter", diameter(c.g)},
                {"wave_rounds", trials[ci].wave},
                {"bgi_slots", trials[ci].bgi}});
    }
    t.print();
    std::printf("   (wave schedules verified collision-free and complete "
                "by execution on the engine)\n");
  }
  json.pass(pass);
  json.set_run_info(opt.jobs, timer.wall_ms(), timer.cpu_ms());
  return 0;
}
