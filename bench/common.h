#pragma once

// Shared experiment-harness helpers: fixed-width table printing (every
// bench prints paper-claim vs measured columns), seed-averaged runs, a
// machine-readable result emitter (BENCH_<id>.json) so sweeps can be
// plotted or regression-tracked without scraping stdout, and the --jobs
// knob that shards trial loops across the deterministic parallel runner
// (support/parallel.h).
//
// Table and JsonEmitter buffer their rows instead of streaming them, so a
// trial can build its own private instance and the driver can `merge` the
// pieces back in trial order — output is then independent of how many
// threads ran the trials.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "support/parallel.h"
#include "support/stats.h"
#include "telemetry/json_writer.h"

namespace radiomc::bench {

/// Harness options shared by every bench binary.
struct Options {
  /// Trial-loop job count: --jobs N (0 = all hardware threads), else the
  /// RADIOMC_JOBS environment variable, else 1.
  unsigned jobs = 1;
};

inline Options parse_options(int argc, char** argv) {
  Options o;
  o.jobs = jobs_from_env();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      const unsigned long v = std::strtoul(argv[++i], nullptr, 10);
      o.jobs = v == 0 ? hardware_jobs() : static_cast<unsigned>(v);
    }
  }
  return o;
}

/// Prints "== E4: ... ==" style experiment headers.
inline void header(const std::string& id, const std::string& claim) {
  std::printf("\n== %s ==\n   claim: %s\n", id.c_str(), claim.c_str());
}

/// Buffered fixed-width table. `row()` only records; `print()` emits the
/// header, rule and rows in recording order. Per-trial tables merge into
/// the driver's table with `merge()`.
class Table {
 public:
  explicit Table(std::vector<std::string> columns, int width = 17)
      : cols_(std::move(columns)), width_(width) {}

  void row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Appends `other`'s rows (column layout is the caller's contract).
  void merge(const Table& other) {
    rows_.insert(rows_.end(), other.rows_.begin(), other.rows_.end());
  }

  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

  void print() const {
    for (const auto& c : cols_) std::printf("%*s", width_, c.c_str());
    std::printf("\n");
    // Rule sized from the configured column width (one leading space of
    // padding kept, like the header cells).
    const std::string rule(width_ > 1 ? width_ - 1 : 1, '-');
    for (std::size_t i = 0; i < cols_.size(); ++i)
      std::printf("%*s", width_, rule.c_str());
    std::printf("\n");
    for (const auto& r : rows_) {
      for (const auto& c : r) std::printf("%*s", width_, c.c_str());
      std::printf("\n");
    }
  }

 private:
  std::vector<std::string> cols_;
  int width_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string num(double v, int precision = 1) {
  return fmt(v, precision);
}
inline std::string num(std::uint64_t v) { return std::to_string(v); }

/// Averages `f(seed)` over `seeds` runs, sharding across `jobs` threads.
/// Deterministic in the jobs count: per-seed values are computed
/// independently and folded in seed order.
template <typename F>
OnlineStats mean_over_seeds(int seeds, std::uint64_t base, F&& f,
                            unsigned jobs = 1) {
  const auto vals = run_indexed(
      static_cast<std::uint64_t>(seeds < 0 ? 0 : seeds), jobs,
      [&](std::uint64_t i) { return static_cast<double>(f(base + i)); });
  OnlineStats s;
  for (double v : vals) s.add(v);
  return s;
}

inline void verdict(bool pass, const std::string& what) {
  std::printf("   [%s] %s\n", pass ? "SHAPE OK" : "MISMATCH", what.c_str());
}

/// One typed cell of a machine-readable result row. The constructors cover
/// the types benches actually record; `{"k", k}` and `{"ratio", r}` both
/// work in a braced row without casts.
struct JsonField {
  enum class Kind { kString, kDouble, kUint, kInt, kBool };
  std::string key;
  Kind kind;
  std::string s;
  double d = 0;
  std::uint64_t u = 0;
  std::int64_t i = 0;
  bool b = false;

  JsonField(std::string k, const char* v)
      : key(std::move(k)), kind(Kind::kString), s(v) {}
  JsonField(std::string k, std::string v)
      : key(std::move(k)), kind(Kind::kString), s(std::move(v)) {}
  JsonField(std::string k, double v)
      : key(std::move(k)), kind(Kind::kDouble), d(v) {}
  JsonField(std::string k, std::uint64_t v)
      : key(std::move(k)), kind(Kind::kUint), u(v) {}
  JsonField(std::string k, std::uint32_t v)
      : key(std::move(k)), kind(Kind::kUint), u(v) {}
  JsonField(std::string k, std::int64_t v)
      : key(std::move(k)), kind(Kind::kInt), i(v) {}
  JsonField(std::string k, int v)
      : key(std::move(k)), kind(Kind::kInt), i(v) {}
  JsonField(std::string k, bool v)
      : key(std::move(k)), kind(Kind::kBool), b(v) {}
};

/// Collects experiment rows and writes `BENCH_<id>.json`:
///   {"schema":"radiomc.bench/v1","bench":"E4","claim":"...",
///    "rows":[{...},...],"pass":true,"run":{"jobs":..,"wall_ms":..,...}}
///
/// Rows are buffered, so trials may build private emitters that the
/// driver folds back with `merge()` in trial order; only the driver's
/// emitter writes a file. Everything before the trailing "run" member is
/// a pure function of the seed — `--jobs 8` and `--jobs 1` produce
/// byte-identical documents up to that member (which records the job
/// count and wall/CPU time and is expected to differ).
///
/// The file lands in $RADIOMC_BENCH_JSON_DIR (default: the working
/// directory); `write()` — also called by the destructor — closes the
/// document and reports the path on stdout.
class JsonEmitter {
 public:
  JsonEmitter(const std::string& id, const std::string& claim)
      : id_(id), claim_(claim) {}
  ~JsonEmitter() { write(); }
  JsonEmitter(const JsonEmitter&) = delete;
  JsonEmitter& operator=(const JsonEmitter&) = delete;
  JsonEmitter(JsonEmitter&&) = default;

  void row(std::initializer_list<JsonField> fields) {
    std::string buf;
    telemetry::JsonWriter w(&buf);
    w.begin_object();
    for (const JsonField& f : fields) {
      switch (f.kind) {
        case JsonField::Kind::kString: w.member(f.key, f.s); break;
        case JsonField::Kind::kDouble: w.member(f.key, f.d); break;
        case JsonField::Kind::kUint: w.member(f.key, f.u); break;
        case JsonField::Kind::kInt: w.member(f.key, f.i); break;
        case JsonField::Kind::kBool: w.member(f.key, f.b); break;
      }
    }
    w.end_object();
    rows_.push_back(std::move(buf));
  }

  /// Appends `other`'s rows and ANDs its pass flag; `other` is consumed
  /// (its destructor will no longer write a file).
  void merge(JsonEmitter&& other) {
    for (auto& r : other.rows_) rows_.push_back(std::move(r));
    pass_ = pass_ && other.pass_;
    other.written_ = true;
  }

  /// Records the bench's overall SHAPE OK / MISMATCH flag.
  void pass(bool ok) { pass_ = ok; }

  /// Records the run metadata appended after the statistics: the job
  /// count the trial loops actually used plus wall/CPU time.
  void set_run_info(unsigned jobs, double wall_ms, double cpu_ms) {
    has_run_info_ = true;
    run_jobs_ = jobs;
    run_wall_ms_ = wall_ms;
    run_cpu_ms_ = cpu_ms;
  }

  /// The full document (exposed for the reproducibility tests).
  std::string document() const {
    std::string buf;
    telemetry::JsonWriter w(&buf);
    w.begin_object();
    w.member("schema", "radiomc.bench/v1");
    w.member("bench", id_);
    w.member("claim", claim_);
    w.key("rows");
    // Rows were serialized by their own writers; splice the fragments in.
    buf += '[';
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i) buf += ',';
      buf += rows_[i];
    }
    buf += ']';
    w.member("pass", pass_);
    if (has_run_info_) {
      w.key("run");
      w.begin_object();
      w.member("jobs", static_cast<std::uint64_t>(run_jobs_));
      w.member("wall_ms", run_wall_ms_);
      w.member("cpu_ms", run_cpu_ms_);
      w.end_object();
    }
    w.end_object();
    return buf;
  }

  /// Finalizes and writes the file; idempotent.
  void write() {
    if (written_) return;
    written_ = true;
    std::string dir = ".";
    if (const char* env = std::getenv("RADIOMC_BENCH_JSON_DIR"))
      if (*env != '\0') dir = env;
    const std::string path = dir + "/BENCH_" + id_ + ".json";
    std::ofstream out(path, std::ios::trunc);
    out << document() << '\n';
    if (out.good())
      std::printf("   json: %s\n", path.c_str());
    else
      std::fprintf(stderr, "   json: FAILED to write %s\n", path.c_str());
  }

 private:
  std::string id_;
  std::string claim_;
  std::vector<std::string> rows_;
  bool pass_ = true;
  bool written_ = false;
  bool has_run_info_ = false;
  unsigned run_jobs_ = 1;
  double run_wall_ms_ = 0.0;
  double run_cpu_ms_ = 0.0;
};

}  // namespace radiomc::bench
