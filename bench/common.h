#pragma once

// Shared experiment-harness helpers: fixed-width table printing (every
// bench prints paper-claim vs measured columns) and seed-averaged runs.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "support/stats.h"

namespace radiomc::bench {

/// Prints "== E4: ... ==" style experiment headers.
inline void header(const std::string& id, const std::string& claim) {
  std::printf("\n== %s ==\n   claim: %s\n", id.c_str(), claim.c_str());
}

class Table {
 public:
  explicit Table(std::vector<std::string> columns, int width = 17)
      : cols_(std::move(columns)), width_(width) {
    for (const auto& c : cols_) std::printf("%*s", width_, c.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < cols_.size(); ++i)
      std::printf("%*s", width_, "------------");
    std::printf("\n");
  }

  void row(const std::vector<std::string>& cells) const {
    for (const auto& c : cells) std::printf("%*s", width_, c.c_str());
    std::printf("\n");
  }

 private:
  std::vector<std::string> cols_;
  int width_;
};

inline std::string num(double v, int precision = 1) {
  return fmt(v, precision);
}
inline std::string num(std::uint64_t v) { return std::to_string(v); }

/// Averages `f(seed)` over `seeds` runs.
template <typename F>
OnlineStats mean_over_seeds(int seeds, std::uint64_t base, F&& f) {
  OnlineStats s;
  for (int i = 0; i < seeds; ++i)
    s.add(static_cast<double>(f(base + static_cast<std::uint64_t>(i))));
  return s;
}

inline void verdict(bool pass, const std::string& what) {
  std::printf("   [%s] %s\n", pass ? "SHAPE OK" : "MISMATCH", what.c_str());
}

}  // namespace radiomc::bench
