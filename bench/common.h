#pragma once

// Shared experiment-harness helpers: fixed-width table printing (every
// bench prints paper-claim vs measured columns), seed-averaged runs, and a
// machine-readable result emitter (BENCH_<id>.json) so sweeps can be
// plotted or regression-tracked without scraping stdout.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "support/stats.h"
#include "telemetry/json_writer.h"

namespace radiomc::bench {

/// Prints "== E4: ... ==" style experiment headers.
inline void header(const std::string& id, const std::string& claim) {
  std::printf("\n== %s ==\n   claim: %s\n", id.c_str(), claim.c_str());
}

class Table {
 public:
  explicit Table(std::vector<std::string> columns, int width = 17)
      : cols_(std::move(columns)), width_(width) {
    for (const auto& c : cols_) std::printf("%*s", width_, c.c_str());
    std::printf("\n");
    // Rule sized from the configured column width (one leading space of
    // padding kept, like the header cells).
    const std::string rule(width_ > 1 ? width_ - 1 : 1, '-');
    for (std::size_t i = 0; i < cols_.size(); ++i)
      std::printf("%*s", width_, rule.c_str());
    std::printf("\n");
  }

  void row(const std::vector<std::string>& cells) const {
    for (const auto& c : cells) std::printf("%*s", width_, c.c_str());
    std::printf("\n");
  }

 private:
  std::vector<std::string> cols_;
  int width_;
};

inline std::string num(double v, int precision = 1) {
  return fmt(v, precision);
}
inline std::string num(std::uint64_t v) { return std::to_string(v); }

/// Averages `f(seed)` over `seeds` runs.
template <typename F>
OnlineStats mean_over_seeds(int seeds, std::uint64_t base, F&& f) {
  OnlineStats s;
  for (int i = 0; i < seeds; ++i)
    s.add(static_cast<double>(f(base + static_cast<std::uint64_t>(i))));
  return s;
}

inline void verdict(bool pass, const std::string& what) {
  std::printf("   [%s] %s\n", pass ? "SHAPE OK" : "MISMATCH", what.c_str());
}

/// One typed cell of a machine-readable result row. The constructors cover
/// the types benches actually record; `{"k", k}` and `{"ratio", r}` both
/// work in a braced row without casts.
struct JsonField {
  enum class Kind { kString, kDouble, kUint, kInt, kBool };
  std::string key;
  Kind kind;
  std::string s;
  double d = 0;
  std::uint64_t u = 0;
  std::int64_t i = 0;
  bool b = false;

  JsonField(std::string k, const char* v)
      : key(std::move(k)), kind(Kind::kString), s(v) {}
  JsonField(std::string k, std::string v)
      : key(std::move(k)), kind(Kind::kString), s(std::move(v)) {}
  JsonField(std::string k, double v)
      : key(std::move(k)), kind(Kind::kDouble), d(v) {}
  JsonField(std::string k, std::uint64_t v)
      : key(std::move(k)), kind(Kind::kUint), u(v) {}
  JsonField(std::string k, std::uint32_t v)
      : key(std::move(k)), kind(Kind::kUint), u(v) {}
  JsonField(std::string k, std::int64_t v)
      : key(std::move(k)), kind(Kind::kInt), i(v) {}
  JsonField(std::string k, int v)
      : key(std::move(k)), kind(Kind::kInt), i(v) {}
  JsonField(std::string k, bool v)
      : key(std::move(k)), kind(Kind::kBool), b(v) {}
};

/// Streams experiment rows into `BENCH_<id>.json`:
///   {"schema":"radiomc.bench/v1","bench":"E4","claim":"...",
///    "rows":[{...},...],"pass":true}
/// The file lands in $RADIOMC_BENCH_JSON_DIR (default: the working
/// directory); `write()` — also called by the destructor — closes the
/// document and reports the path on stdout.
class JsonEmitter {
 public:
  JsonEmitter(const std::string& id, const std::string& claim)
      : id_(id), writer_(&buf_) {
    writer_.begin_object();
    writer_.member("schema", "radiomc.bench/v1");
    writer_.member("bench", id);
    writer_.member("claim", claim);
    writer_.key("rows");
    writer_.begin_array();
  }
  ~JsonEmitter() { write(); }
  JsonEmitter(const JsonEmitter&) = delete;
  JsonEmitter& operator=(const JsonEmitter&) = delete;

  void row(std::initializer_list<JsonField> fields) {
    writer_.begin_object();
    for (const JsonField& f : fields) {
      switch (f.kind) {
        case JsonField::Kind::kString: writer_.member(f.key, f.s); break;
        case JsonField::Kind::kDouble: writer_.member(f.key, f.d); break;
        case JsonField::Kind::kUint: writer_.member(f.key, f.u); break;
        case JsonField::Kind::kInt: writer_.member(f.key, f.i); break;
        case JsonField::Kind::kBool: writer_.member(f.key, f.b); break;
      }
    }
    writer_.end_object();
  }

  /// Records the bench's overall SHAPE OK / MISMATCH flag.
  void pass(bool ok) { pass_ = ok; }

  /// Finalizes and writes the file; idempotent.
  void write() {
    if (written_) return;
    written_ = true;
    writer_.end_array();
    writer_.member("pass", pass_);
    writer_.end_object();
    std::string dir = ".";
    if (const char* env = std::getenv("RADIOMC_BENCH_JSON_DIR"))
      if (*env != '\0') dir = env;
    const std::string path = dir + "/BENCH_" + id_ + ".json";
    std::ofstream out(path, std::ios::trunc);
    out << buf_ << '\n';
    if (out.good())
      std::printf("   json: %s\n", path.c_str());
    else
      std::fprintf(stderr, "   json: FAILED to write %s\n", path.c_str());
  }

 private:
  std::string id_;
  std::string buf_;
  telemetry::JsonWriter writer_;
  bool pass_ = true;
  bool written_ = false;
};

}  // namespace radiomc::bench
