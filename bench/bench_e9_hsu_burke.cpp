// E9 — the queueing substrate of §4.3 (Hsu & Burke [12], Burke [5],
// Little [14]):
//   * stationary queue-length law p_0 = 1 - lambda/mu,
//     p_1 = lambda p_0 / ((1-lambda) mu), geometric tail;
//   * mean queue length N = lambda(1-lambda)/(mu-lambda);
//   * Theorem 4.2: the departure process is Bernoulli(lambda) — measured
//    via its rate and its consecutive-departure rate lambda^2;
//   * in a tandem, *every* server sees Bernoulli(lambda) input (the key
//    §4.3 observation), checked by measuring the queue law at depth 1, 3
//    and 5 of a 6-deep tandem.
//
// Inherently serial: each section is one long Markov chain whose state
// carries across samples, so --jobs is accepted but has nothing to shard.

#include "common.h"
#include "queueing/analysis.h"
#include "queueing/bernoulli_server.h"
#include "queueing/tandem.h"
#include "support/rng.h"

using namespace radiomc;
using namespace radiomc::bench;
using namespace radiomc::queueing;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  RunTimer timer;
  header("E9: Hsu-Burke single server + tandem propagation",
         "stationary p_j matches the closed form; departures are "
         "Bernoulli(lambda) at every stage");

  JsonEmitter json("E9",
                   "Hsu-Burke queue law, Bernoulli departures, Little's "
                   "law at every tandem stage");
  bool pass = true;
  const double mu = 0.5, lambda = 0.25;
  {
    BernoulliServer srv(lambda, mu, Rng(0xE91));
    const auto stats = srv.run(50'000, 800'000);
    Table t({"j", "empirical p_j", "closed form", "abs diff"});
    bool ok = true;
    for (std::uint32_t j = 0; j <= 6; ++j) {
      const double emp = stats.queue_lengths.pmf(j);
      const double cf = hsu_burke_pj(lambda, mu, j);
      ok = ok && std::abs(emp - cf) < 0.01;
      t.row({num(std::uint64_t(j)), num(emp, 4), num(cf, 4),
             num(std::abs(emp - cf), 4)});
      json.row({{"section", "single_server"},
                {"j", j},
                {"empirical_pj", emp},
                {"closed_form_pj", cf}});
    }
    t.print();
    verdict(ok, "queue-length law matches Hsu-Burke within 0.01");
    std::printf("   mean queue: measured %s vs formula %s\n",
                num(stats.queue_lengths.mean(), 4).c_str(),
                num(mean_queue_length(lambda, mu), 4).c_str());
    const double rate = static_cast<double>(stats.departures) / stats.steps;
    const double pair =
        static_cast<double>(stats.consecutive_departures) / stats.steps;
    std::printf("   departures: rate %s (lambda=%.2f), consecutive rate %s "
                "(lambda^2=%.4f)\n",
                num(rate, 4).c_str(), lambda, num(pair, 4).c_str(),
                lambda * lambda);
    const bool dep_ok = std::abs(rate - lambda) < 0.005 &&
                        std::abs(pair - lambda * lambda) < 0.005;
    verdict(dep_ok,
            "Theorem 4.2: departure process behaves as Bernoulli(lambda)");
    json.row({{"section", "departures"},
              {"rate", rate},
              {"consecutive_rate", pair},
              {"lambda", lambda}});
    pass = pass && ok && dep_ok;
  }

  // Tandem: the queue law must be the same at every depth.
  {
    std::printf("\n   tandem of 6 servers, queue law per stage:\n");
    Rng rng(0xE92);
    TandemQueue q(6, mu, rng.split(1));
    // warm up with arrivals, then sample.
    for (int i = 0; i < 100'000; ++i) q.step(lambda);
    Histogram h1, h3, h5;
    for (int i = 0; i < 800'000; ++i) {
      q.step(lambda);
      h1.add(static_cast<std::int64_t>(q.queue(0)));
      h3.add(static_cast<std::int64_t>(q.queue(2)));
      h5.add(static_cast<std::int64_t>(q.queue(4)));
    }
    Table t({"j", "stage1", "stage3", "stage5", "closed form"});
    bool ok = true;
    for (std::uint32_t j = 0; j <= 4; ++j) {
      const double cf = hsu_burke_pj(lambda, mu, j);
      ok = ok && std::abs(h1.pmf(j) - cf) < 0.015 &&
           std::abs(h3.pmf(j) - cf) < 0.015 && std::abs(h5.pmf(j) - cf) < 0.015;
      t.row({num(std::uint64_t(j)), num(h1.pmf(j), 4), num(h3.pmf(j), 4),
             num(h5.pmf(j), 4), num(cf, 4)});
      json.row({{"section", "tandem_law"},
                {"j", j},
                {"stage1_pj", h1.pmf(j)},
                {"stage3_pj", h3.pmf(j)},
                {"stage5_pj", h5.pmf(j)},
                {"closed_form_pj", cf}});
    }
    t.print();
    verdict(ok, "every tandem stage sees the same Bernoulli(lambda) input "
                "(the §4.3 'major observation')");
    pass = pass && ok;
  }

  // Little's law, measured on tagged customers: per-stage mean sojourn
  // must equal N/lambda = (1-lambda)/(mu-lambda).
  {
    std::printf("\n   Little's law per stage (tagged customers):\n");
    Rng rng(0xE93);
    TandemQueue q(6, mu, rng.split(2));
    q.enable_sojourn();
    for (int i = 0; i < 900'000; ++i) q.step(lambda);
    const double predicted = mean_wait(lambda, mu);
    Table t({"stage", "mean sojourn", "N/lambda"});
    bool ok = true;
    for (std::uint32_t s = 0; s < 6; ++s) {
      ok = ok && std::abs(q.sojourn(s).mean() - predicted) < 0.15;
      t.row({num(std::uint64_t(s + 1)), num(q.sojourn(s).mean(), 3),
             num(predicted, 3)});
      json.row({{"section", "littles_law"},
                {"stage", s + 1},
                {"mean_sojourn", q.sojourn(s).mean()},
                {"predicted", predicted}});
    }
    t.print();
    verdict(ok, "mean sojourn = (1-lambda)/(mu-lambda) at every stage "
                "(Little [14], as used in §4.3)");
    pass = pass && ok;
  }
  json.pass(pass);
  json.set_run_info(opt.jobs, timer.wall_ms(), timer.cpu_ms());
  return 0;
}
