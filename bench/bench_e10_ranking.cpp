// E10 — §7 ranking:
//   "the ranking problem is solved in O(n log n log Delta) time ...
//    There is a total of 2n - 2 messages, which require O(n log Delta)
//    time (not including the setup costs of Section 2)."
//
// Sweep n on paths and random graphs; measured total slots next to
// n log2(n) log2(Delta) and the tighter post-setup n log2(Delta) form.
// The ids and seed of every (case, rep) run are drawn serially in loop
// order; the ranking runs themselves shard across --jobs threads.

#include <cmath>
#include <string>
#include <vector>

#include "common.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/dfs_numbering.h"
#include "protocols/ranking.h"
#include "protocols/tree.h"
#include "support/rng.h"

using namespace radiomc;
using namespace radiomc::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  RunTimer timer;
  header("E10: ranking",
         "2n-2 messages in O(n log Delta) slots after setup "
         "(O(n log n log Delta) including it)");

  Rng rng(0xE10);
  struct Case {
    std::string name;
    Graph g;
  };
  std::vector<Case> cases;
  for (NodeId n : {16u, 32u, 64u, 128u})
    cases.push_back({"path" + std::to_string(n), gen::path(n)});
  cases.push_back({"gnp48", gen::gnp_connected(48, 0.12, rng)});
  cases.push_back({"grid8x8", gen::grid(8, 8)});

  constexpr int kReps = 2;
  // Preparation is deterministic; do it up front so the trial function is
  // pure, and draw ids/seeds in the historical (case, rep) order.
  std::vector<PreparationResult> preps;
  std::vector<bool> prep_ok;
  for (auto& c : cases) {
    const BfsTree tree = oracle_bfs_tree(c.g, 0);
    preps.push_back(run_preparation(c.g, tree));
    prep_ok.push_back(preps.back().ok);
  }
  struct Input {
    std::vector<std::uint64_t> ids;
    std::uint64_t seed = 0;
  };
  std::vector<Input> inputs;
  inputs.reserve(cases.size() * kReps);
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    if (!prep_ok[ci]) continue;
    for (int rep = 0; rep < kReps; ++rep) {
      Input in;
      in.ids.resize(cases[ci].g.num_nodes());
      for (auto& id : in.ids) id = rng.next();
      in.seed = rng.next();
      inputs.push_back(std::move(in));
    }
  }

  const auto outcomes =
      run_indexed(inputs.size(), opt.jobs, [&](std::uint64_t i) {
        // inputs are dense over the prep-ok cases, in case order.
        std::uint64_t seen = 0;
        for (std::size_t ci = 0; ci < cases.size(); ++ci) {
          if (!prep_ok[ci]) continue;
          if (i < seen + kReps)
            return run_ranking(cases[ci].g, preps[ci], inputs[i].ids,
                               inputs[i].seed);
          seen += kReps;
        }
        return RankingOutcome{};
      });

  Table t({"topology", "n", "collect", "deliver", "total",
           "total/(n*logD)", "ok"});
  JsonEmitter json("E10",
                   "2n-2 messages in O(n log Delta) slots after setup");
  bool all_ok = true;
  double min_norm = 1e18, max_norm = 0;
  std::uint64_t base = 0;
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const Case& c = cases[ci];
    if (!prep_ok[ci]) continue;
    OnlineStats collect, deliver, total;
    bool correct = true;
    for (int rep = 0; rep < kReps; ++rep) {
      const RankingOutcome& out = outcomes[base + rep];
      correct = correct && out.completed;
      collect.add(static_cast<double>(out.collect_slots));
      deliver.add(static_cast<double>(out.deliver_slots));
      total.add(static_cast<double>(out.total_slots()));
    }
    base += kReps;
    const double logd =
        std::max(1.0, std::log2(static_cast<double>(c.g.max_degree())));
    const double norm = total.mean() / (c.g.num_nodes() * logd);
    if (c.name.rfind("path", 0) == 0) {
      min_norm = std::min(min_norm, norm);
      max_norm = std::max(max_norm, norm);
    }
    all_ok = all_ok && correct;
    t.row({c.name, num(std::uint64_t(c.g.num_nodes())),
           num(collect.mean(), 0), num(deliver.mean(), 0),
           num(total.mean(), 0), num(norm, 1), correct ? "OK" : "FAIL"});
    json.row({{"topology", c.name},
              {"n", c.g.num_nodes()},
              {"collect_slots_mean", collect.mean()},
              {"deliver_slots_mean", deliver.mean()},
              {"total_slots_mean", total.mean()},
              {"norm", norm},
              {"ok", correct}});
  }
  t.print();
  verdict(all_ok, "ranking always produced the order-preserving 1..n map");
  const bool flat = max_norm / min_norm < 3.0;
  verdict(flat,
          "slots per (n log Delta) flat across an 8x n sweep on paths: the "
          "O(n log Delta) post-setup claim");
  json.pass(all_ok && flat);
  json.set_run_info(opt.jobs, timer.wall_ms(), timer.cpu_ms());
  return 0;
}
