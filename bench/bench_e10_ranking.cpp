// E10 — §7 ranking:
//   "the ranking problem is solved in O(n log n log Delta) time ...
//    There is a total of 2n - 2 messages, which require O(n log Delta)
//    time (not including the setup costs of Section 2)."
//
// Sweep n on paths and random graphs; measured total slots next to
// n log2(n) log2(Delta) and the tighter post-setup n log2(Delta) form.

#include <cmath>
#include <string>
#include <vector>

#include "common.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/dfs_numbering.h"
#include "protocols/ranking.h"
#include "protocols/tree.h"
#include "support/rng.h"

using namespace radiomc;
using namespace radiomc::bench;

int main() {
  header("E10: ranking",
         "2n-2 messages in O(n log Delta) slots after setup "
         "(O(n log n log Delta) including it)");

  Rng rng(0xE10);
  struct Case {
    std::string name;
    Graph g;
  };
  std::vector<Case> cases;
  for (NodeId n : {16u, 32u, 64u, 128u})
    cases.push_back({"path" + std::to_string(n), gen::path(n)});
  cases.push_back({"gnp48", gen::gnp_connected(48, 0.12, rng)});
  cases.push_back({"grid8x8", gen::grid(8, 8)});

  Table t({"topology", "n", "collect", "deliver", "total",
           "total/(n*logD)", "ok"});
  bool all_ok = true;
  double min_norm = 1e18, max_norm = 0;
  for (auto& c : cases) {
    const BfsTree tree = oracle_bfs_tree(c.g, 0);
    const PreparationResult prep = run_preparation(c.g, tree);
    if (!prep.ok) continue;
    OnlineStats collect, deliver, total;
    bool correct = true;
    for (int rep = 0; rep < 2; ++rep) {
      std::vector<std::uint64_t> ids(c.g.num_nodes());
      for (auto& id : ids) id = rng.next();
      const RankingOutcome out = run_ranking(c.g, prep, ids, rng.next());
      correct = correct && out.completed;
      collect.add(static_cast<double>(out.collect_slots));
      deliver.add(static_cast<double>(out.deliver_slots));
      total.add(static_cast<double>(out.total_slots()));
    }
    const double logd =
        std::max(1.0, std::log2(static_cast<double>(c.g.max_degree())));
    const double norm = total.mean() / (c.g.num_nodes() * logd);
    if (c.name.rfind("path", 0) == 0) {
      min_norm = std::min(min_norm, norm);
      max_norm = std::max(max_norm, norm);
    }
    all_ok = all_ok && correct;
    t.row({c.name, num(std::uint64_t(c.g.num_nodes())),
           num(collect.mean(), 0), num(deliver.mean(), 0),
           num(total.mean(), 0), num(norm, 1), correct ? "OK" : "FAIL"});
  }
  verdict(all_ok, "ranking always produced the order-preserving 1..n map");
  verdict(max_norm / min_norm < 3.0,
          "slots per (n log Delta) flat across an 8x n sweep on paths: the "
          "O(n log Delta) post-setup claim");
  return 0;
}
