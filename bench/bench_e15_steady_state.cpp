// E15 — the §4.3 queueing model validated against the live protocol:
// drive the collection protocol as an open system with Bernoulli(lambda)
// arrivals per phase and compare the measured stationary population and
// per-message sojourn with the model-4 closed forms. By Theorem 4.15 the
// network is dominated by the tandem, so measured <= model is the claim —
// and the margin shows how conservative mu = e^-1(1-e^-1) is.
//
// The six (case, lambda) steady-state runs shard across --jobs threads;
// seeds are drawn serially in loop order so every cell is job-count
// independent.

#include <vector>

#include "common.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/steady_state.h"
#include "protocols/tree.h"
#include "queueing/analysis.h"
#include "support/rng.h"

using namespace radiomc;
using namespace radiomc::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  RunTimer timer;
  header("E15: live protocol vs the §4.3 queueing model",
         "open-system collection: measured population and sojourn must sit "
         "below the model-4 closed forms D*N and D*(1-lambda)/(mu-lambda)");

  const double mu = queueing::mu_decay();
  Rng rng(0xE15);

  struct Case {
    const char* name;
    Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"path17 (D=16)", gen::path(17)});
  cases.push_back({"grid6x6 (D=10)", gen::grid(6, 6)});
  const std::vector<double> fracs = {0.25, 0.5, 0.75};

  struct Cell {
    std::size_t ci;
    double frac;
    std::uint64_t seed;
  };
  std::vector<Cell> cells;
  for (std::size_t ci = 0; ci < cases.size(); ++ci)
    for (double frac : fracs) cells.push_back({ci, frac, rng.next()});

  const auto outs = run_indexed(cells.size(), opt.jobs, [&](std::uint64_t i) {
    const Cell& cell = cells[i];
    const Case& c = cases[cell.ci];
    const BfsTree tree = oracle_bfs_tree(c.g, 0);
    return run_collection_steady_state(c.g, tree, mu * cell.frac,
                                       /*phases=*/20'000, /*warmup=*/2'000,
                                       cell.seed);
  });

  JsonEmitter json("E15",
                   "open-system collection dominated by the model-4 closed "
                   "forms");
  bool ok = true;
  std::size_t idx = 0;
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const Case& c = cases[ci];
    const BfsTree tree = oracle_bfs_tree(c.g, 0);
    std::printf("\n   %s, arrivals at the deepest level:\n", c.name);
    Table t({"lambda/mu", "measured pop", "model pop", "measured sojourn",
             "model sojourn", "dominated"});
    for (double frac : fracs) {
      const double lambda = mu * frac;
      const auto& out = outs[idx++];
      const double model_pop =
          tree.depth * queueing::mean_queue_length(lambda, mu);
      const double model_sojourn = tree.depth * queueing::mean_wait(lambda, mu);
      const bool cell_ok = out.population.mean() <= model_pop * 1.05 &&
                           out.sojourn_phases.mean() <= model_sojourn * 1.05;
      ok = ok && cell_ok;
      t.row({num(frac, 2), num(out.population.mean(), 2), num(model_pop, 2),
             num(out.sojourn_phases.mean(), 2), num(model_sojourn, 2),
             cell_ok ? "yes" : "NO"});
      json.row({{"topology", c.name},
                {"lambda_over_mu", frac},
                {"measured_population", out.population.mean()},
                {"model_population", model_pop},
                {"measured_sojourn_phases", out.sojourn_phases.mean()},
                {"model_sojourn_phases", model_sojourn},
                {"dominated", cell_ok}});
    }
    t.print();
  }
  verdict(ok,
          "the live network is dominated by its queueing model everywhere "
          "(Theorem 4.15 at work in the open system)");
  json.pass(ok);
  json.set_run_info(opt.jobs, timer.wall_ms(), timer.cpu_ms());
  return 0;
}
