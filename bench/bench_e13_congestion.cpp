// E13 — §8 remark (5), the paper's open problem:
//   "Our protocols route messages through a spanning tree causing
//    congestion at the root. Are there efficient communication protocols
//    that avoid this problem?"
//
// We quantify the congestion the remark refers to: per-BFS-level
// transmission and delivery counts during a k-message collection and a
// k-broadcast. The root-adjacent levels carry the entire load, with per-
// node transmissions growing toward the root like k / width(level).
//
// Inherently serial: one traced engine run whose ActivityCounter is the
// measurement; --jobs is accepted for harness uniformity only.

#include <string>
#include <vector>

#include "common.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/broadcast_service.h"
#include "protocols/collection.h"
#include "protocols/tree.h"
#include "radio/trace.h"
#include "support/rng.h"

using namespace radiomc;
using namespace radiomc::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  RunTimer timer;
  header("E13: root congestion (the §8(5) open problem, quantified)",
         "tree routing concentrates traffic at low levels: per-node "
         "transmissions grow toward the root");

  Rng rng(0xE13);
  const Graph g = gen::grid(8, 8);
  const BfsTree tree = oracle_bfs_tree(g, 0);
  const int k = 128;

  // Collection with a trace: build manually to attach the counter.
  std::vector<Message> init;
  for (int i = 0; i < k; ++i) {
    Message m;
    m.kind = MsgKind::kData;
    m.origin = static_cast<NodeId>(1 + rng.next_below(g.num_nodes() - 1));
    m.seq = static_cast<std::uint32_t>(i);
    init.push_back(m);
  }
  CollectionConfig ccfg = CollectionConfig::for_graph(g);
  Rng master(rng.next());
  std::vector<std::unique_ptr<CollectionStation>> st;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    st.push_back(
        std::make_unique<CollectionStation>(v, tree, ccfg, master.split(v)));
  for (const Message& m : init) st[m.origin]->inject(m);
  std::deque<SingleStation> adapters;
  std::vector<Station*> ptrs;
  for (auto& s : st) adapters.emplace_back(*s);
  for (auto& a : adapters) ptrs.push_back(&a);
  ActivityCounter counter(g.num_nodes());
  RadioNetwork net(g);
  net.set_trace(&counter);
  net.attach(std::move(ptrs));
  while (st[0]->root_sink().size() < init.size() && net.now() < 10'000'000)
    net.step();

  // Aggregate by level.
  std::vector<std::uint64_t> level_tx(tree.depth + 1, 0), level_n(tree.depth + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    level_tx[tree.level[v]] += counter.transmissions[v];
    ++level_n[tree.level[v]];
  }
  std::printf("\n   collection of k=%d messages on grid8x8 (D=%u):\n", k,
              tree.depth);
  Table t({"level", "nodes", "tx_total", "tx_per_node"});
  JsonEmitter json("E13",
                   "tree routing concentrates per-node transmissions "
                   "toward the root");
  double tx_lvl1 = 0, tx_deep = 0;
  for (std::uint32_t l = 0; l <= tree.depth; ++l) {
    const double per =
        level_n[l] ? static_cast<double>(level_tx[l]) / level_n[l] : 0;
    if (l == 1) tx_lvl1 = per;
    if (l == tree.depth) tx_deep = per;
    t.row({num(std::uint64_t(l)), num(level_n[l]), num(level_tx[l]),
           num(per, 1)});
    json.row({{"level", l},
              {"nodes", level_n[l]},
              {"tx_total", level_tx[l]},
              {"tx_per_node", per}});
  }
  t.print();
  const bool ok = tx_lvl1 > 4 * (tx_deep + 1);
  verdict(ok,
          "level-1 nodes transmit an order of magnitude more than deep "
          "nodes: the root bottleneck the paper's open problem names");
  std::printf("   (every message crosses level 1; only k/width(l) cross a "
              "deep level)\n");
  json.pass(ok);
  json.set_run_info(opt.jobs, timer.wall_ms(), timer.cpu_ms());
  return 0;
}
