// E3 — §2, the setup phase:
//   "This phase takes O((n + D log n) log Delta) time."
//
// We run the full always-succeeding setup (leader election, BFS with
// verification, DFS preparation, completion flood) across n and topology.
// Two times are reported: `schedule` — the globally known epoch budget the
// protocol actually occupies (the paper's notion of setup time: everyone
// must know when it ends), and `work` — the slot at which the root's final
// verification completed. Both are normalized by (n + D log2 n) log2 Delta;
// a roughly flat ratio column is the claim.
//
// Setup runs shard across --jobs threads; seeds are drawn serially in
// (case, rep) order so statistics are job-count independent.

#include <cmath>
#include <string>
#include <vector>

#include "common.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/setup.h"
#include "support/rng.h"

using namespace radiomc;
using namespace radiomc::bench;

namespace {
double bound(NodeId n, std::uint32_t d, std::uint32_t delta) {
  const double logn = std::log2(std::max<double>(2, n));
  const double logd = std::log2(std::max<double>(2, delta));
  return (n + d * logn) * logd;
}
}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  RunTimer timer;
  header("E3: setup phase cost",
         "expected O((n + D log n) log Delta) slots; ratio column ~ flat");

  Rng rng(0xE3);
  struct Case {
    std::string name;
    Graph g;
  };
  std::vector<Case> cases;
  for (NodeId n : {16u, 32u, 64u, 128u}) {
    cases.push_back({"path" + std::to_string(n), gen::path(n)});
  }
  for (NodeId side : {4u, 6u, 8u, 11u}) {
    cases.push_back({"grid" + std::to_string(side) + "x" + std::to_string(side),
                     gen::grid(side, side)});
  }
  cases.push_back({"udg48", gen::unit_disk_connected(
                               48, gen::udg_connect_radius(48), rng)});
  cases.push_back({"gnp48", gen::gnp_connected(48, 0.12, rng)});

  constexpr int kReps = 2;
  // One seed per (case, rep), drawn in the order the serial loop used.
  std::vector<std::uint64_t> seeds;
  seeds.reserve(cases.size() * kReps);
  for (std::size_t ci = 0; ci < cases.size(); ++ci)
    for (int rep = 0; rep < kReps; ++rep) seeds.push_back(rng.next());

  const auto outcomes =
      run_indexed(seeds.size(), opt.jobs, [&](std::uint64_t i) {
        return run_setup(cases[i / kReps].g, seeds[i]);
      });

  Table t({"topology", "n", "D", "Delta", "attempts", "schedule", "work",
           "sched/bound", "work/bound"});
  JsonEmitter json("E3", "setup slots ~ O((n + D log n) log Delta)");
  bool shape_ok = true;
  double min_ratio = 1e18, max_ratio = 0;
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const Case& c = cases[ci];
    const std::uint32_t d = diameter(c.g);
    OnlineStats sched, work, attempts;
    for (int rep = 0; rep < kReps; ++rep) {
      const SetupOutcome& out = outcomes[ci * kReps + rep];
      if (!out.ok) {
        shape_ok = false;
        continue;
      }
      sched.add(static_cast<double>(out.slots));
      work.add(static_cast<double>(out.work_slots));
      attempts.add(out.attempts);
    }
    const double b = bound(c.g.num_nodes(), d, c.g.max_degree());
    const double r = sched.mean() / b;
    min_ratio = std::min(min_ratio, r);
    max_ratio = std::max(max_ratio, r);
    t.row({c.name, num(std::uint64_t(c.g.num_nodes())), num(std::uint64_t(d)),
           num(std::uint64_t(c.g.max_degree())), num(attempts.mean(), 1),
           num(sched.mean(), 0), num(work.mean(), 0), num(r, 1),
           num(work.mean() / b, 1)});
    json.row({{"topology", c.name},
              {"n", c.g.num_nodes()},
              {"diameter", d},
              {"max_degree", c.g.max_degree()},
              {"attempts_mean", attempts.mean()},
              {"schedule_slots_mean", sched.mean()},
              {"work_slots_mean", work.mean()},
              {"bound", b},
              {"schedule_over_bound", r},
              {"work_over_bound", work.mean() / b}});
  }
  t.print();
  // "Flat" up to the budget constants: the largest/smallest normalized cost
  // should stay within a modest factor as n grows 8x.
  shape_ok = shape_ok && (max_ratio / min_ratio < 12.0);
  verdict(shape_ok,
          "setup cost tracks (n + D log n) log Delta across an 8x n range "
          "(ratio spread < 12x; constants come from the epoch budgets)");
  json.pass(shape_ok);
  json.set_run_info(opt.jobs, timer.wall_ms(), timer.cpu_ms());
  return 0;
}
