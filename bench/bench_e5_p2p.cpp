// E5 — §5 point-to-point transmission:
//   "After the setup, k point-to-point transmissions require
//    O((k + D) log Delta) time on the average. Therefore the network
//    allows a new transmission every O(log Delta) time slots."
//
// Random (src, dst) pairs on several topologies; sweep k, report slots and
// slots/(k+D)/log2(Delta) (should flatten), plus the marginal per-message
// cost (the throughput claim). The (k, rep) runs of each topology shard
// across --jobs threads with streams split off in loop order.

#include <string>
#include <vector>

#include "common.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "protocols/point_to_point.h"
#include "protocols/tree.h"
#include "support/rng.h"
#include "support/util.h"

using namespace radiomc;
using namespace radiomc::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  RunTimer timer;
  header("E5: k point-to-point transmissions",
         "O((k+D) log Delta) slots; normalized column flattens in k");

  Rng rng(0xE5);
  struct Case {
    std::string name;
    Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"grid8x8", gen::grid(8, 8)});
  cases.push_back({"path48", gen::path(48)});
  cases.push_back({"udg64", gen::unit_disk_connected(
                                64, gen::udg_connect_radius(64), rng)});

  const std::vector<std::uint64_t> ks = {4, 8, 16, 32, 64, 128};
  constexpr int kReps = 3;

  JsonEmitter json("E5",
                   "O((k+D) log Delta) slots; slots/((k+D) log Delta) "
                   "flattens in k");
  bool flat_ok = true;
  for (auto& c : cases) {
    const BfsTree tree = oracle_bfs_tree(c.g, 0);
    const PreparationResult prep = run_preparation(c.g, tree);
    if (!prep.ok) {
      std::printf("preparation failed on %s\n", c.name.c_str());
      return 1;
    }
    const double logd = std::max<double>(1, ceil_log2(c.g.max_degree()));
    std::printf("\n   topology %s (n=%u, D=%u, Delta=%u)\n", c.name.c_str(),
                c.g.num_nodes(), tree.depth, c.g.max_degree());

    std::vector<Rng> streams;
    streams.reserve(ks.size() * kReps);
    for (std::uint64_t k : ks)
      for (int rep = 0; rep < kReps; ++rep)
        streams.push_back(rng.split(k * 100 + rep));
    const auto slots_per_trial =
        run_indexed(streams.size(), opt.jobs, [&](std::uint64_t i) {
          const std::uint64_t k = ks[i / kReps];
          Rng r = streams[i];
          std::vector<P2pRequest> reqs;
          for (std::uint64_t j = 0; j < k; ++j)
            reqs.push_back(
                {static_cast<NodeId>(r.next_below(c.g.num_nodes())),
                 static_cast<NodeId>(r.next_below(c.g.num_nodes())), j});
          return static_cast<double>(
              run_point_to_point(c.g, prep, reqs, P2pConfig::for_graph(c.g),
                                 r.next())
                  .slots);
        });

    Table t({"k", "slots", "norm", "marginal/msg"});
    double norm32 = 0, last_norm = 0, prev_slots = 0;
    std::uint64_t prev_k = 0;
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      const std::uint64_t k = ks[ki];
      OnlineStats slots;
      for (int rep = 0; rep < kReps; ++rep)
        slots.add(slots_per_trial[ki * kReps + rep]);
      const double norm =
          slots.mean() / (static_cast<double>(k + tree.depth) * logd);
      if (k == 32) norm32 = norm;
      last_norm = norm;
      const double marginal =
          prev_k ? (slots.mean() - prev_slots) / static_cast<double>(k - prev_k)
                 : 0;
      t.row({num(k), num(slots.mean(), 0), num(norm, 1),
             prev_k ? num(marginal, 1) : std::string("-")});
      json.row({{"topology", c.name},
                {"k", k},
                {"slots_mean", slots.mean()},
                {"norm", norm},
                {"marginal_slots_per_msg", marginal}});
      prev_slots = slots.mean();
      prev_k = k;
    }
    t.print();
    // Linear-in-k shape in the steady regime (small-k points are dominated
    // by the pipeline filling, where slots are tiny and normalization by
    // k+D overweights D).
    flat_ok = flat_ok && last_norm < 1.5 * norm32;
  }
  verdict(flat_ok,
          "slots/((k+D) log Delta) flat from k=32 to k=128: linear in k, "
          "i.e. a new transmission every O(log Delta) slots");
  json.pass(flat_ok);
  json.set_run_info(opt.jobs, timer.wall_ms(), timer.cpu_ms());
  return 0;
}
