// E14 — §1.3's exponential gap between determinism and randomization:
//   "For D = 2, [3] have also shown an Omega(n) lower bound for
//    deterministic protocols. Thus, for this problem there exist
//    randomized protocols that are much more efficient than any
//    deterministic one."
//
// We sweep n on diameter-2 networks (source - middle layer - sink, the
// lower bound's shape) and compare the deterministic round-robin broadcast
// (collision-free, the Theta(n) representative) against the randomized BGI
// flood (O((D + log n) log Delta)). The gap must grow ~linearly in n.
// BGI seeds are drawn serially in (n, rep) order; the 25 randomized floods
// shard across --jobs threads.

#include <vector>

#include "common.h"
#include "baselines/round_robin_broadcast.h"
#include "graph/graph.h"
#include "protocols/bgi_broadcast.h"
#include "support/rng.h"
#include "support/util.h"

using namespace radiomc;
using namespace radiomc::bench;
using namespace radiomc::baselines;

namespace {

/// The adversarial D = 2 gadget of the lower-bound argument: source 0 is
/// adjacent to every middle node, and the sink is adjacent only to the
/// middle the deterministic schedule serves *last*. A deterministic
/// protocol has no feedback, so the adversary places the sink's (unknown!)
/// neighborhood at the end of its fixed schedule — round robin then pays
/// ~n slots. The randomized flood never learns the topology either, but
/// pays only the Decay logarithm.
Graph two_hop_adversarial(NodeId middles) {
  std::vector<std::pair<NodeId, NodeId>> e;
  const NodeId sink = middles + 1;
  for (NodeId m = 1; m <= middles; ++m) e.emplace_back(0, m);
  e.emplace_back(middles, sink);  // the last-scheduled middle
  return Graph(middles + 2, e);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  RunTimer timer;
  header("E14: determinism vs randomization on D = 2",
         "deterministic broadcast Theta(n) (Omega(n) lower bound, [3]) vs "
         "randomized O((D + log n) log Delta)");

  Rng rng(0xE14);
  const std::vector<NodeId> middles_sweep = {14u, 30u, 62u, 126u, 254u};
  constexpr int kReps = 5;

  std::vector<Graph> graphs;
  for (NodeId middles : middles_sweep)
    graphs.push_back(two_hop_adversarial(middles));
  std::vector<std::uint64_t> seeds;
  seeds.reserve(graphs.size() * kReps);
  for (std::size_t gi = 0; gi < graphs.size(); ++gi)
    for (int rep = 0; rep < kReps; ++rep) seeds.push_back(rng.next());

  struct Trial {
    bool informed = false;
    double last = 0;
  };
  const auto trials =
      run_indexed(seeds.size(), opt.jobs, [&](std::uint64_t i) {
        const Graph& g = graphs[i / kReps];
        const NodeId n = g.num_nodes();
        // Run BGI until all informed: phase budget then measure the last
        // first-reception time.
        const std::uint64_t phases = 8 * (2 + 2 * ceil_log2(n) + 4);
        const auto b = run_bgi_broadcast(g, 0, phases, seeds[i]);
        Trial tr;
        tr.informed = b.informed_count == n;
        if (tr.informed) {
          SlotTime last = 0;
          for (NodeId v = 0; v < n; ++v)
            last = std::max(last, b.informed_at[v]);
          tr.last = static_cast<double>(last);
        }
        return tr;
      });

  Table t({"n", "det_slots", "rand_slots", "gap"});
  JsonEmitter json("E14",
                   "deterministic Theta(n) vs randomized polylog on the "
                   "D=2 lower-bound gadget");
  double first_gap = 0, last_gap = 0;
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const Graph& g = graphs[gi];
    const NodeId n = g.num_nodes();

    const auto det = run_round_robin_broadcast(g, 0);
    if (!det.completed || det.collisions != 0) {
      std::printf("round robin failed\n");
      return 1;
    }

    OnlineStats rand_slots;
    for (int rep = 0; rep < kReps; ++rep) {
      const Trial& tr = trials[gi * kReps + rep];
      if (tr.informed) rand_slots.add(tr.last);
    }
    const double gap =
        static_cast<double>(det.slots) / rand_slots.mean();
    if (first_gap == 0) first_gap = gap;
    last_gap = gap;
    t.row({num(std::uint64_t(n)), num(std::uint64_t(det.slots)),
           num(rand_slots.mean(), 0), num(gap, 2)});
    json.row({{"n", n},
              {"det_slots", det.slots},
              {"rand_slots_mean", rand_slots.mean()},
              {"gap", gap}});
  }
  t.print();
  const bool ok = last_gap > 3.0 * first_gap;
  verdict(ok,
          "the deterministic/randomized gap grows with n (linear vs "
          "polylog — §1.3's exponential separation, measured)");
  json.pass(ok);
  json.set_run_info(opt.jobs, timer.wall_ms(), timer.cpu_ms());
  return 0;
}
